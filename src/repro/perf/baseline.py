"""Baseline persistence and regression comparison for the perf suite.

The committed baseline (``benchmarks/baselines/BENCH_perf_baseline.json``)
pins the expected median time of every tracked workload.  A fresh
:class:`~repro.perf.suite.PerfReport` regresses when any workload's
median exceeds its baseline median by more than the tolerance (25% by
default — generous enough to absorb machine jitter, tight enough to
catch a hot path quietly falling back to a slow implementation).

Timings are machine-dependent by nature: refresh the baseline with
``repro-engine bench --update-baseline`` whenever the fleet or the
expected performance changes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from .suite import PerfReport

__all__ = ["DEFAULT_BASELINE_PATH", "HIGHER_BETTER_METRICS",
           "RSS_TOLERANCE", "Comparison", "compare_reports",
           "default_baseline_path", "load_report", "save_report",
           "format_comparisons"]

#: Repo-relative location of the committed baseline.
DEFAULT_BASELINE_PATH = Path("benchmarks/baselines/BENCH_perf_baseline.json")


def default_baseline_path() -> Path:
    """Locate the committed baseline regardless of invocation directory.

    Tries the working directory first (the documented repo-root usage),
    then the checkout this module was imported from (``src/`` layout).
    Falls back to the cwd-relative path — which is also where
    ``--update-baseline`` creates a baseline from scratch.
    """
    if DEFAULT_BASELINE_PATH.exists():
        return DEFAULT_BASELINE_PATH
    checkout = Path(__file__).resolve().parents[3] / DEFAULT_BASELINE_PATH
    if checkout.exists():
        return checkout
    return DEFAULT_BASELINE_PATH


#: Throughput extras where *bigger* is better — they regress when the
#: ratio drops below ``1 / (1 + tolerance)``.
HIGHER_BETTER_METRICS = frozenset({"scenarios_per_s",
                                   "ksamples_per_s_core"})

#: Peak RSS depends on allocator behaviour, import order and prior
#: workloads far more than on the code under test; gate it with at
#: least this (generous) tolerance.
RSS_TOLERANCE = 0.75


@dataclass(frozen=True)
class Comparison:
    """One workload's (or metric's) current-vs-baseline verdict.

    Attributes:
        name: workload name, or ``workload:metric`` for extras rows.
        baseline_median_s: committed value — seconds for median rows,
            the metric's own unit for extras rows; None when the
            workload is missing from the baseline (new workload — not
            a failure).
        current_median_s: freshly measured value; None when the
            baseline workload is **missing from the current run**,
            which fails the gate (a silently dropped workload must
            never read as green).
        ratio: current / baseline (None when either side is absent).
        regressed: the gate verdict for this row.
        metric: extras key for metric rows, None for median rows.
    """

    name: str
    baseline_median_s: float | None
    current_median_s: float | None
    ratio: float | None
    regressed: bool
    metric: str | None = None


def compare_reports(current: PerfReport, baseline: PerfReport,
                    tolerance: float = 0.25,
                    names: list[str] | None = None) -> list[Comparison]:
    """Compare each measured workload against the baseline medians.

    Besides the per-workload median, any throughput extras present in
    both reports are gated too, direction-aware: throughput metrics
    regress when they *drop* past the tolerance, memory when it grows.
    Baseline workloads absent from the current run produce a
    ``regressed`` comparison — restrict the required set with ``names``
    when deliberately benchmarking a subset.

    Raises:
        ValueError: on a negative tolerance.
    """
    if tolerance < 0.0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    comparisons: list[Comparison] = []
    measured: set[str] = set()
    for timing in current.results:
        measured.add(timing.name)
        base = baseline.timing(timing.name)
        if base is None or not base.times_s:
            comparisons.append(Comparison(
                name=timing.name, baseline_median_s=None,
                current_median_s=timing.median_s, ratio=None,
                regressed=False))
            continue
        ratio = (timing.median_s / base.median_s
                 if base.median_s > 0.0 else float("inf"))
        comparisons.append(Comparison(
            name=timing.name,
            baseline_median_s=base.median_s,
            current_median_s=timing.median_s,
            ratio=ratio,
            regressed=ratio > 1.0 + tolerance))
        for key in sorted(set(timing.extras) & set(base.extras)):
            base_v, cur_v = base.extras[key], timing.extras[key]
            if base_v <= 0.0:
                continue
            m_ratio = cur_v / base_v
            if key in HIGHER_BETTER_METRICS:
                regressed = m_ratio < 1.0 / (1.0 + tolerance)
            elif key == "peak_rss_mb":
                regressed = m_ratio > 1.0 + max(tolerance, RSS_TOLERANCE)
            else:
                regressed = m_ratio > 1.0 + tolerance
            comparisons.append(Comparison(
                name=f"{timing.name}:{key}",
                baseline_median_s=base_v, current_median_s=cur_v,
                ratio=m_ratio, regressed=regressed, metric=key))
    # Baseline workloads with no measurement in this run: fail the
    # gate.  Without this, deleting (or typo-ing) a tracked workload
    # silently passes CI with less coverage than it claims.
    for base in baseline.results:
        if base.name in measured:
            continue
        if names is not None and base.name not in names:
            continue
        comparisons.append(Comparison(
            name=base.name, baseline_median_s=base.median_s,
            current_median_s=None, ratio=None, regressed=True))
    return comparisons


def save_report(report: PerfReport, path: str | Path) -> Path:
    """Serialize a report (suite run or baseline) as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report.to_dict(), indent=2,
                               sort_keys=True) + "\n")
    return path


def load_report(path: str | Path) -> PerfReport:
    """Read a report written by :func:`save_report`."""
    return PerfReport.from_dict(json.loads(Path(path).read_text()))


def format_comparisons(comparisons: list[Comparison],
                       tolerance: float) -> str:
    """Aligned comparison table (rendered via analysis.reporting).

    Median rows show milliseconds; metric rows (``workload:metric``)
    show the metric's native unit.  A baseline workload absent from
    the current run renders as ``MISSING``.
    """
    from ..analysis.reporting import format_table

    def fmt(comp: Comparison, value: float | None) -> str:
        if value is None:
            return "-"
        if comp.metric is not None:
            return f"{value:.2f}"
        return f"{value * 1e3:.2f} ms"

    rows = []
    for comp in comparisons:
        verdict = ("MISSING" if comp.current_median_s is None
                   else "REGRESSED" if comp.regressed
                   else "new" if comp.ratio is None else "ok")
        rows.append((comp.name, fmt(comp, comp.baseline_median_s),
                     fmt(comp, comp.current_median_s),
                     "-" if comp.ratio is None else f"{comp.ratio:.2f}x",
                     verdict))
    table = format_table(
        ["workload", "baseline", "current", "ratio", "verdict"],
        rows)
    return (f"{table}\n(regression threshold: "
            f"{(1.0 + tolerance):.2f}x baseline median)")
