"""repro.perf — the tracked performance harness.

Micro and macro benchmarks over the pipeline's hot paths (DTW, decode,
capture, engine batches) with warmup/repeat statistics, machine-readable
``BENCH_perf.json`` artifacts and committed-baseline regression
comparison.  Exposed on the command line as ``repro-engine bench``.
"""

from .baseline import (
    DEFAULT_BASELINE_PATH,
    Comparison,
    compare_reports,
    default_baseline_path,
    format_comparisons,
    load_report,
    save_report,
)
from .suite import (
    PerfReport,
    Workload,
    WorkloadTiming,
    default_workloads,
    format_stage_medians,
    run_suite,
)

__all__ = [
    "DEFAULT_BASELINE_PATH",
    "Comparison",
    "PerfReport",
    "Workload",
    "WorkloadTiming",
    "compare_reports",
    "default_baseline_path",
    "default_workloads",
    "format_comparisons",
    "format_stage_medians",
    "load_report",
    "run_suite",
    "save_report",
]
