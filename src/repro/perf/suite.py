"""The tracked performance suite: timed workloads with statistics.

Speed is a deliverable of this reproduction ("as fast as the hardware
allows"), so it is measured like one: a fixed set of named micro and
macro workloads covering the hot paths — DTW alignment, adaptive
decode, channel capture, engine batches — each timed with warmup and
repeats, summarized as median/stddev, and serialized to a
machine-readable ``BENCH_perf.json`` that CI diffs against a committed
baseline (see :mod:`repro.perf.baseline`).  Since the streaming
runtime landed, online decode throughput (``stream_decode``) is
tracked alongside the offline paths.

Every workload has a *quick* variant (smaller inputs, fewer repeats)
so the whole suite stays cheap enough to run on every pull request.
"""

from __future__ import annotations

import math
import os
import platform
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

import numpy as np

__all__ = ["Workload", "WorkloadTiming", "PerfReport",
           "default_workloads", "run_suite", "format_stage_medians"]

SCHEMA = "repro.perf/1"


@dataclass(frozen=True)
class Workload:
    """One named, repeatable timing target.

    Attributes:
        name: stable identifier (the key baselines are matched on).
        kind: ``"micro"`` (one hot function) or ``"macro"``
            (an end-to-end slice of the pipeline).
        description: what one repeat measures.
        setup: ``setup(quick) -> thunk``; everything done inside
            ``setup`` (building scenes, rendering traces) is excluded
            from the timing, only the returned thunk is timed.
        repeats: timed repetitions in full mode.
        quick_repeats: timed repetitions in quick mode.
        warmup: untimed runs before measurement (cache/JIT settling).
        metrics: optional ``metrics(quick, timing) -> extras`` called
            after measurement to derive throughput numbers
            (scenarios/s, ksamples/s/core, peak RSS) from the median;
            the dict lands in :attr:`WorkloadTiming.extras` and is
            baseline-gated alongside the median.
    """

    name: str
    kind: str
    description: str
    setup: Callable[[bool], Callable[[], Any]]
    repeats: int = 5
    quick_repeats: int = 3
    warmup: int = 1
    metrics: Callable[[bool, "WorkloadTiming"],
                      dict[str, float]] | None = None


@dataclass
class WorkloadTiming:
    """Measured repeat times for one workload.

    ``extras`` holds derived throughput metrics (``scenarios_per_s``,
    ``ksamples_per_s_core``, ``peak_rss_mb``, ...) produced by the
    workload's ``metrics`` hook; they round-trip through the JSON
    report and are compared against the baseline with
    direction-aware tolerances.
    """

    name: str
    kind: str
    description: str
    warmup: int
    times_s: list[float] = field(default_factory=list)
    extras: dict[str, float] = field(default_factory=dict)

    @property
    def repeats(self) -> int:
        return len(self.times_s)

    @property
    def median_s(self) -> float:
        return float(np.median(self.times_s)) if self.times_s else math.nan

    @property
    def mean_s(self) -> float:
        return float(np.mean(self.times_s)) if self.times_s else math.nan

    @property
    def stddev_s(self) -> float:
        return float(np.std(self.times_s)) if self.times_s else math.nan

    @property
    def min_s(self) -> float:
        return float(np.min(self.times_s)) if self.times_s else math.nan

    @property
    def max_s(self) -> float:
        return float(np.max(self.times_s)) if self.times_s else math.nan

    @property
    def stage_medians_s(self) -> dict[str, float]:
        """Per-stage median seconds recorded by a ``--profile`` run.

        Derived from the ``stage_<name>_s`` extras written by
        :func:`_profile_stages`; empty for unprofiled runs and for
        workloads that never touch the stage graph.
        """
        out: dict[str, float] = {}
        for key, value in self.extras.items():
            if key.startswith("stage_") and key.endswith("_s"):
                out[key[len("stage_"):-len("_s")]] = float(value)
        return dict(sorted(out.items()))

    def to_dict(self) -> dict:
        data = {
            "name": self.name,
            "kind": self.kind,
            "description": self.description,
            "warmup": self.warmup,
            "repeats": self.repeats,
            "times_s": list(self.times_s),
            "median_s": self.median_s,
            "mean_s": self.mean_s,
            "stddev_s": self.stddev_s,
            "min_s": self.min_s,
            "max_s": self.max_s,
            "extras": {k: float(v) for k, v in sorted(self.extras.items())},
        }
        # First-class block so CI can diff stage-level regressions
        # without parsing extras key conventions.  Derived from the
        # extras, so ``from_dict`` round-trips it implicitly.
        stages = self.stage_medians_s
        if stages:
            data["stages"] = stages
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadTiming":
        return cls(name=data["name"], kind=data.get("kind", "micro"),
                   description=data.get("description", ""),
                   warmup=data.get("warmup", 0),
                   times_s=[float(v) for v in data["times_s"]],
                   extras={k: float(v)
                           for k, v in data.get("extras", {}).items()})


@dataclass
class PerfReport:
    """One full suite run: all workload timings plus environment."""

    results: list[WorkloadTiming] = field(default_factory=list)
    quick: bool = False
    meta: dict = field(default_factory=dict)

    def timing(self, name: str) -> WorkloadTiming | None:
        for result in self.results:
            if result.name == name:
                return result
        return None

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "quick": self.quick,
            "meta": dict(self.meta),
            "workloads": [r.to_dict() for r in self.results],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PerfReport":
        return cls(
            results=[WorkloadTiming.from_dict(w)
                     for w in data.get("workloads", [])],
            quick=bool(data.get("quick", False)),
            meta=dict(data.get("meta", {})),
        )


def _environment_meta() -> dict:
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "system": platform.system(),
        "cpu_count": os.cpu_count(),
    }


# ----------------------------------------------------------------------
# The default workload set
# ----------------------------------------------------------------------

def _dtw_signals(quick: bool) -> tuple[np.ndarray, np.ndarray]:
    n = 600 if quick else 2000
    rng = np.random.default_rng(42)
    t = np.linspace(0.0, 30.0, n)
    a = np.sin(t) + 0.1 * rng.normal(size=n)
    b = np.sin(t * 1.05) + 0.1 * rng.normal(size=n)
    return a, b


def _setup_dtw(implementation: str) -> Callable[[bool], Callable[[], Any]]:
    def setup(quick: bool) -> Callable[[], Any]:
        from ..dsp.dtw import dtw

        a, b = _dtw_signals(quick)
        return lambda: dtw(a, b, implementation=implementation)

    return setup


def _bench_spec():
    from ..engine.spec import ScenarioSpec

    return ScenarioSpec(source="sun", detector="led", cap=False,
                        ground="tarmac", bits="00", symbol_width_m=0.1,
                        speed_mps=5.0, receiver_height_m=0.25,
                        start_position_m=-1.5, sample_rate_hz=2000.0,
                        ground_lux=450.0, seed=3)


def _setup_decode(quick: bool) -> Callable[[], Any]:
    from ..core.decoder import AdaptiveThresholdDecoder
    from ..engine.executor import build_simulator

    bits = "00" if quick else "1001"
    spec = _bench_spec().replace(bits=bits).resolve()
    trace = build_simulator(spec).capture_pass()
    decoder = AdaptiveThresholdDecoder()
    n_data_symbols = 2 * len(bits)
    return lambda: decoder.decode(trace, n_data_symbols=n_data_symbols)


def _setup_capture(quick: bool) -> Callable[[], Any]:
    from ..engine.executor import build_simulator

    spec = _bench_spec().replace(bits="00" if quick else "1001").resolve()
    sim = build_simulator(spec)
    return sim.capture_pass


def _setup_stream_decode(quick: bool) -> Callable[[], Any]:
    from ..engine.executor import build_simulator
    from ..stream.replay import replay_trace

    bits = "00" if quick else "1001"
    spec = _bench_spec().replace(bits=bits).resolve()
    trace = build_simulator(spec).capture_pass()
    n_data_symbols = 2 * len(bits)
    return lambda: replay_trace(trace, chunk_size=64,
                                n_data_symbols=n_data_symbols)


def _setup_engine_batch(quick: bool) -> Callable[[], Any]:
    from ..engine.runner import BatchRunner
    from ..engine.spec import expand_grid

    specs = expand_grid(_bench_spec(),
                        {"seed": list(range(2, 6 if quick else 14))})
    runner = BatchRunner(workers=1)
    return lambda: runner.run(specs)


def _batch_seeds(quick: bool, full: int, quick_n: int) -> list[int]:
    return list(range(2, 2 + (quick_n if quick else full)))


def _setup_tensor_batch(quick: bool) -> Callable[[], Any]:
    from ..engine.runner import BatchRunner
    from ..engine.spec import expand_grid

    specs = expand_grid(_bench_spec(), {"seed": _batch_seeds(quick, 12, 4)})
    runner = BatchRunner(workers=1, backend="tensor")
    return lambda: runner.run(specs)


def _setup_tensor_throughput(quick: bool) -> Callable[[], Any]:
    from ..engine.runner import BatchRunner
    from ..engine.spec import expand_grid

    specs = expand_grid(_bench_spec(), {"seed": _batch_seeds(quick, 64, 16)})
    runner = BatchRunner(workers=1, backend="tensor")
    return lambda: runner.run(specs)


def _peak_rss_mb() -> float | None:
    """Process peak RSS in MiB, or None where ``resource`` is absent."""
    try:
        import resource

        rss = float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    except Exception:  # pragma: no cover - non-POSIX platforms
        return None
    # ru_maxrss is KiB on Linux, bytes on macOS.
    if platform.system() == "Darwin":  # pragma: no cover
        rss /= 1024.0
    return rss / 1024.0


def _grid_metrics(full: int, quick_n: int) -> Callable[
        [bool, "WorkloadTiming"], dict[str, float]]:
    """Throughput extras for the fixed-grid batch workloads.

    All the grid workloads run ``_bench_spec`` variants, so one capture
    tells us the per-scenario sample count; everything else derives
    from the measured median on one core.
    """
    def metrics(quick: bool, timing: "WorkloadTiming") -> dict[str, float]:
        from ..engine.executor import build_simulator

        extras: dict[str, float] = {}
        n_scenarios = quick_n if quick else full
        median = timing.median_s
        if median > 0.0:
            trace = build_simulator(_bench_spec().resolve()).capture_pass()
            extras["scenarios_per_s"] = n_scenarios / median
            extras["ksamples_per_s_core"] = (
                n_scenarios * len(trace.samples) / median / 1e3)
        rss = _peak_rss_mb()
        if rss is not None:
            extras["peak_rss_mb"] = rss
        return extras

    return metrics


def default_workloads() -> list[Workload]:
    """The tracked workload set (stable names — baselines key on them)."""
    return [
        Workload(
            name="dtw_banded",
            kind="micro",
            description="Vectorized Sakoe-Chiba-banded DTW alignment of "
                        "two noisy 2000-sample traces (600 quick)",
            setup=_setup_dtw("vectorized"),
            quick_repeats=7,
        ),
        Workload(
            name="dtw_reference",
            kind="micro",
            description="Reference pure-Python DTW loop on the same "
                        "signals (the speedup denominator)",
            setup=_setup_dtw("reference"),
            repeats=3,
        ),
        Workload(
            name="decode_adaptive",
            kind="micro",
            description="Adaptive-threshold decode (incl. clock "
                        "refinement) of one captured outdoor packet",
            setup=_setup_decode,
            repeats=25,
            quick_repeats=15,
            warmup=3,
        ),
        Workload(
            name="capture_pass",
            kind="macro",
            description="Channel simulation of one full tag pass "
                        "through the receiver FoV at 2 kS/s",
            setup=_setup_capture,
            repeats=25,
            quick_repeats=15,
            warmup=3,
        ),
        Workload(
            name="stream_decode",
            kind="macro",
            description="Online streaming replay of one captured pass "
                        "in 64-sample chunks (incremental acquisition, "
                        "running normalizer, flush verdict)",
            setup=_setup_stream_decode,
            repeats=25,
            quick_repeats=15,
            warmup=3,
        ),
        Workload(
            name="engine_batch",
            kind="macro",
            description="Serial BatchRunner batch of 12 outdoor "
                        "scenarios (4 quick), no cache",
            setup=_setup_engine_batch,
            repeats=5,
            quick_repeats=7,
            metrics=_grid_metrics(12, 4),
        ),
        Workload(
            name="tensor_batch",
            kind="macro",
            description="Same 12-scenario grid (4 quick) through the "
                        "tensor backend: fused (N, T) array passes, "
                        "one process, float64",
            setup=_setup_tensor_batch,
            repeats=7,
            quick_repeats=7,
            metrics=_grid_metrics(12, 4),
        ),
        Workload(
            name="tensor_throughput",
            kind="macro",
            description="64-scenario grid (16 quick) through the "
                        "tensor backend — the amortized per-scenario "
                        "throughput the backend is built for",
            setup=_setup_tensor_throughput,
            repeats=5,
            quick_repeats=5,
            metrics=_grid_metrics(64, 16),
        ),
    ]


# ----------------------------------------------------------------------
# Suite runner
# ----------------------------------------------------------------------

def run_suite(quick: bool = False,
              names: Iterable[str] | None = None,
              workloads: Sequence[Workload] | None = None,
              repeats: int | None = None,
              clock: Callable[[], float] = time.perf_counter,
              profile: bool = False) -> PerfReport:
    """Time the (selected) workloads and return a :class:`PerfReport`.

    Args:
        quick: use each workload's quick input sizes and repeat counts.
        names: optional subset of workload names to run.
        workloads: override the default workload set (tests).
        repeats: override every workload's repeat count.
        clock: timing source (injectable for deterministic tests).
        profile: after the gated timing repeats, run a few *extra*
            profiled passes of each workload and record per-stage
            median wall time as ``stage_<name>_s`` extras.  The timed
            repeats themselves run unprofiled, and the stage extras
            are absent from committed baselines, so gated metrics are
            untouched.

    Raises:
        KeyError: when ``names`` contains an unknown workload.
    """
    available = list(workloads if workloads is not None
                     else default_workloads())
    if names is not None:
        wanted = list(names)
        by_name = {w.name: w for w in available}
        unknown = [n for n in wanted if n not in by_name]
        if unknown:
            raise KeyError(
                f"unknown workload(s) {unknown}; available: "
                f"{sorted(by_name)}")
        available = [by_name[n] for n in wanted]

    report = PerfReport(quick=quick, meta=_environment_meta())
    for workload in available:
        thunk = workload.setup(quick)
        n_repeats = repeats if repeats is not None else (
            workload.quick_repeats if quick else workload.repeats)
        for _ in range(workload.warmup):
            thunk()
        times: list[float] = []
        for _ in range(max(1, n_repeats)):
            started = clock()
            thunk()
            times.append(clock() - started)
        timing = WorkloadTiming(
            name=workload.name, kind=workload.kind,
            description=workload.description,
            warmup=workload.warmup, times_s=times)
        if workload.metrics is not None:
            timing.extras = {k: float(v) for k, v
                             in workload.metrics(quick, timing).items()}
        if profile:
            timing.extras.update(_profile_stages(thunk))
        report.results.append(timing)
    return report


def _profile_stages(thunk: Callable[[], Any],
                    passes: int = 3) -> dict[str, float]:
    """Per-stage median wall time over a few profiled thunk runs.

    Collects every :class:`~repro.exec.graph.StageTrace` the thunk's
    interior creates (single process only — forked workers keep
    theirs) and reports ``stage_<name>_s`` medians.  Workloads that
    never touch the stage graph contribute nothing.
    """
    from ..exec.graph import StageTrace, collect_traces, profiled

    per_stage: dict[str, list[float]] = {}
    for _ in range(max(1, passes)):
        with profiled(), collect_traces() as traces:
            thunk()
        merged = StageTrace()
        for trace in traces:
            merged.merge(trace)
        for name, seconds in merged.timings_s.items():
            per_stage.setdefault(name, []).append(seconds)
    return {f"stage_{name}_s": float(np.median(values))
            for name, values in sorted(per_stage.items())}


def format_stage_medians(report: PerfReport) -> str:
    """Aligned per-workload stage-median table for ``--profile`` runs.

    Empty string when no workload recorded stage timings (run without
    ``--profile``, or none touched the stage graph).
    """
    from ..analysis.reporting import format_table

    rows = []
    for timing in report.results:
        stages = timing.stage_medians_s
        total = sum(stages.values())
        for name, seconds in stages.items():
            share = seconds / total if total > 0.0 else 0.0
            rows.append((timing.name, name, f"{seconds * 1e3:.2f}",
                         f"{share * 100.0:.1f}%"))
    if not rows:
        return ""
    return format_table(["workload", "stage", "median ms", "share"], rows)
