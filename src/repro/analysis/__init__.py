"""Analysis: metrics, parameter sweeps, per-figure experiments, reports."""

from .experiments import (
    ExperimentResult,
    experiment_fig5,
    experiment_fig6a,
    experiment_fig6b,
    experiment_fig7,
    experiment_fig8,
    experiment_fig10,
    experiment_fig11,
    experiment_fig13,
    experiment_fig14,
    experiment_fig15,
    experiment_fig16,
    experiment_fig17,
)
from .metrics import (
    ExponentialFit,
    LinearFit,
    bit_error_rate,
    fit_exponential,
    fit_linear,
    symbol_error_rate,
    throughput_sps,
)
from .reporting import format_series, format_table, summarize_results
from .waterfall import (
    WaterfallCurve,
    WaterfallPoint,
    decode_rate,
    dirt_waterfall,
    fog_waterfall,
    noise_floor_waterfall,
)
from .sweeps import (
    DecodabilityGrid,
    FusionGainSweep,
    sweep_decodability,
    sweep_frontier,
    sweep_fusion_gain,
    sweep_scenario_family,
    sweep_throughput,
)

__all__ = [
    "ExperimentResult",
    "experiment_fig5", "experiment_fig6a", "experiment_fig6b",
    "experiment_fig7", "experiment_fig8", "experiment_fig10",
    "experiment_fig11", "experiment_fig13", "experiment_fig14",
    "experiment_fig15", "experiment_fig16", "experiment_fig17",
    "ExponentialFit", "LinearFit", "bit_error_rate", "fit_exponential",
    "fit_linear", "symbol_error_rate", "throughput_sps",
    "format_series", "format_table", "summarize_results",
    "DecodabilityGrid", "FusionGainSweep", "sweep_decodability",
    "sweep_frontier", "sweep_fusion_gain", "sweep_scenario_family",
    "sweep_throughput",
    "WaterfallCurve", "WaterfallPoint", "decode_rate",
    "noise_floor_waterfall", "dirt_waterfall", "fog_waterfall",
]
