"""Link-quality metrics and curve-fit helpers for the evaluation."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "symbol_error_rate",
    "bit_error_rate",
    "throughput_sps",
    "LinearFit",
    "ExponentialFit",
    "fit_linear",
    "fit_exponential",
]


def symbol_error_rate(sent: str, received: str) -> float:
    """Fraction of symbol positions that differ.

    Missing trailing symbols in ``received`` count as errors; extra
    received symbols also count against the longer length.
    """
    if not sent:
        raise ValueError("sent symbol string must be non-empty")
    n = max(len(sent), len(received))
    errors = sum(1 for i in range(n)
                 if i >= len(sent) or i >= len(received)
                 or sent[i] != received[i])
    return errors / n


def bit_error_rate(sent_bits: str, received_bits: str) -> float:
    """Fraction of bit positions that differ (same conventions)."""
    return symbol_error_rate(sent_bits, received_bits)


def throughput_sps(speed_mps: float, symbol_width_m: float) -> float:
    """Channel symbol rate: speed over symbol width."""
    if speed_mps <= 0.0 or symbol_width_m <= 0.0:
        raise ValueError("speed and symbol width must be positive")
    return speed_mps / symbol_width_m


@dataclass(frozen=True)
class LinearFit:
    """Result of a least-squares line fit ``y = slope * x + intercept``."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float | np.ndarray) -> float | np.ndarray:
        """Evaluate the fitted line."""
        return self.slope * np.asarray(x, dtype=float) + self.intercept


@dataclass(frozen=True)
class ExponentialFit:
    """Result of fitting ``y = amplitude * exp(rate * x)``."""

    amplitude: float
    rate: float
    r_squared: float

    def predict(self, x: float | np.ndarray) -> float | np.ndarray:
        """Evaluate the fitted exponential."""
        return self.amplitude * np.exp(self.rate * np.asarray(x, dtype=float))


def _r_squared(y: np.ndarray, y_pred: np.ndarray) -> float:
    ss_res = float(np.sum((y - y_pred) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def fit_linear(x: np.ndarray, y: np.ndarray) -> LinearFit:
    """Least-squares line through (x, y).

    Raises:
        ValueError: with fewer than two points.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if len(x) != len(y):
        raise ValueError("x and y must have equal length")
    if len(x) < 2:
        raise ValueError("need at least two points")
    slope, intercept = np.polyfit(x, y, deg=1)
    return LinearFit(slope=float(slope), intercept=float(intercept),
                     r_squared=_r_squared(y, slope * x + intercept))


def fit_exponential(x: np.ndarray, y: np.ndarray) -> ExponentialFit:
    """Fit ``y = A * exp(r x)`` by least squares in log space.

    Raises:
        ValueError: unless all ``y`` are strictly positive.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if len(x) != len(y):
        raise ValueError("x and y must have equal length")
    if len(x) < 2:
        raise ValueError("need at least two points")
    if np.any(y <= 0.0):
        raise ValueError("exponential fit requires positive y values")
    log_fit = fit_linear(x, np.log(y))
    amplitude = float(np.exp(log_fit.intercept))
    rate = log_fit.slope
    y_pred = amplitude * np.exp(rate * x)
    return ExponentialFit(amplitude=amplitude, rate=rate,
                          r_squared=_r_squared(y, y_pred))
