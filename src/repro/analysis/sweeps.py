"""Parameter-sweep engine for the Fig. 6 capacity maps.

The Fig. 6 experiments sweep emitter/receiver height against symbol
width, probing decodability at each grid point (paper: heights 20-55 cm,
widths 1.5-7.5 cm, speed 8 cm/s).  The engine reuses the single-point
probes in :mod:`repro.core.capacity`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.capacity import (
    IndoorSetup,
    min_decodable_width,
    probe_decodable,
)

__all__ = ["DecodabilityGrid", "sweep_decodability",
           "sweep_frontier", "sweep_throughput"]


@dataclass
class DecodabilityGrid:
    """Decodability over a (height x width) grid.

    Attributes:
        heights_m: grid heights (ascending).
        widths_m: grid symbol widths (ascending).
        decodable: boolean matrix ``[i_height, j_width]``.
    """

    heights_m: np.ndarray
    widths_m: np.ndarray
    decodable: np.ndarray

    def max_height_for_width(self, j: int) -> float | None:
        """Largest decodable height for width column ``j`` (None: none)."""
        col = self.decodable[:, j]
        idx = np.nonzero(col)[0]
        if len(idx) == 0:
            return None
        return float(self.heights_m[idx[-1]])

    def frontier(self) -> list[tuple[float, float]]:
        """(width, max decodable height) pairs where decodable at all."""
        out: list[tuple[float, float]] = []
        for j, width in enumerate(self.widths_m):
            h = self.max_height_for_width(j)
            if h is not None:
                out.append((float(width), h))
        return out

    def render(self) -> str:
        """ASCII map of the decodable region (rows: heights, top=high)."""
        lines = ["      " + " ".join(f"{w * 100:4.1f}" for w in self.widths_m)
                 + "   (symbol width, cm)"]
        for i in reversed(range(len(self.heights_m))):
            cells = "    ".join("#" if self.decodable[i, j] else "."
                                for j in range(len(self.widths_m)))
            lines.append(f"{self.heights_m[i]:5.2f} {cells}")
        lines.append("(height, m;  # = decodable)")
        return "\n".join(lines)


def sweep_decodability(setup: IndoorSetup,
                       heights_m: np.ndarray,
                       widths_m: np.ndarray) -> DecodabilityGrid:
    """Probe every (height, width) grid point.

    Exploits monotonicity within a column: once a width fails at some
    height, greater heights are not probed (assumed undecodable), which
    cuts the sweep cost roughly in half.
    """
    heights = np.sort(np.asarray(heights_m, dtype=float))
    widths = np.sort(np.asarray(widths_m, dtype=float))
    if len(heights) == 0 or len(widths) == 0:
        raise ValueError("sweep grids must be non-empty")
    grid = np.zeros((len(heights), len(widths)), dtype=bool)
    for j, width in enumerate(widths):
        for i, height in enumerate(heights):
            ok = probe_decodable(setup, float(height), float(width))
            grid[i, j] = ok
            if not ok and i > 0 and grid[i - 1, j]:
                # Past the frontier: deeper probes would all fail.
                break
    return DecodabilityGrid(heights_m=heights, widths_m=widths,
                            decodable=grid)


def sweep_frontier(setup: IndoorSetup, widths_m: np.ndarray,
                   height_lo_m: float = 0.18,
                   height_hi_m: float = 0.9,
                   tolerance_m: float = 0.02,
                   ) -> list[tuple[float, float]]:
    """Max decodable height per width via bisection (Fig. 6(a) curve)."""
    from ..core.capacity import max_decodable_height

    out: list[tuple[float, float]] = []
    for width in np.sort(np.asarray(widths_m, dtype=float)):
        h = max_decodable_height(setup, float(width),
                                 height_lo_m=height_lo_m,
                                 height_hi_m=height_hi_m,
                                 tolerance_m=tolerance_m)
        if h is not None:
            out.append((float(width), h))
    return out


def sweep_throughput(setup: IndoorSetup, heights_m: np.ndarray,
                     width_lo_m: float = 0.008,
                     width_hi_m: float = 0.14,
                     tolerance_m: float = 0.003,
                     ) -> list[tuple[float, float]]:
    """Throughput (symbols/s) per height (Fig. 6(b) curve).

    For each height, bisect for the narrowest decodable width and report
    ``speed / width``; heights where nothing decodes are omitted.
    """
    out: list[tuple[float, float]] = []
    for height in np.sort(np.asarray(heights_m, dtype=float)):
        width = min_decodable_width(setup, float(height),
                                    width_lo_m=width_lo_m,
                                    width_hi_m=width_hi_m,
                                    tolerance_m=tolerance_m)
        if width is not None:
            out.append((float(height), setup.speed_mps / width))
    return out
