"""Parameter sweeps for the Fig. 6 capacity maps.

The Fig. 6 experiments sweep emitter/receiver height against symbol
width, probing decodability at each grid point (paper: heights 20-55 cm,
widths 1.5-7.5 cm, speed 8 cm/s).  Grid sweeps execute through
:mod:`repro.engine` — every (height, width, seed) cell becomes a
:class:`~repro.engine.ScenarioSpec` and runs through a
:class:`~repro.engine.BatchRunner`, so sweeps parallelize across cores
and repeated sweeps hit the engine's result cache.  The bisection-based
frontier searches reuse the sequential single-point probes in
:mod:`repro.core.capacity` (each probe depends on the previous verdict,
so there is nothing to batch).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.capacity import IndoorSetup, min_decodable_width
from ..engine import (
    BatchResult,
    BatchRunner,
    RunRecord,
    ScenarioSpec,
    expand_grid,
    fusion_stats,
)
from ..scenarios import expand_family

__all__ = ["DecodabilityGrid", "FusionGainSweep", "probe_spec",
           "sweep_decodability", "sweep_frontier", "sweep_fusion_gain",
           "sweep_scenario_family", "sweep_throughput"]


def probe_spec(setup: IndoorSetup, height_m: float, symbol_width_m: float,
               seed: int, speed_mps: float | None = None) -> ScenarioSpec:
    """The engine spec equivalent to one dark-room decodability probe.

    Reproduces :func:`repro.core.capacity.probe_decodable`'s scene
    exactly — same lamp, start margin, sampling rule, decoder and seed —
    so engine-run grids agree with the sequential probes cell for cell.
    """
    speed = speed_mps if speed_mps is not None else setup.speed_mps
    return ScenarioSpec(
        bits=setup.data_bits,
        symbol_width_m=symbol_width_m,
        receiver_height_m=height_m,
        speed_mps=speed,
        source="led_lamp",
        lamp_intensity_cd=setup.lamp_intensity_cd,
        lamp_offset_m=setup.lamp_offset_m,
        detector="pd",
        pd_gain=setup.pd_gain.name,
        cap=True,
        sample_rate_hz=setup.sample_rate_hz(symbol_width_m, speed),
        threshold_rule=setup.threshold_rule,
        seed=seed,
    )


@dataclass
class DecodabilityGrid:
    """Decodability over a (height x width) grid.

    Attributes:
        heights_m: grid heights (ascending).
        widths_m: grid symbol widths (ascending).
        decodable: boolean matrix ``[i_height, j_width]``.
    """

    heights_m: np.ndarray
    widths_m: np.ndarray
    decodable: np.ndarray

    def max_height_for_width(self, j: int) -> float | None:
        """Largest decodable height for width column ``j`` (None: none)."""
        col = self.decodable[:, j]
        idx = np.nonzero(col)[0]
        if len(idx) == 0:
            return None
        return float(self.heights_m[idx[-1]])

    def frontier(self) -> list[tuple[float, float]]:
        """(width, max decodable height) pairs where decodable at all."""
        out: list[tuple[float, float]] = []
        for j, width in enumerate(self.widths_m):
            h = self.max_height_for_width(j)
            if h is not None:
                out.append((float(width), h))
        return out

    def render(self) -> str:
        """ASCII map of the decodable region (rows: heights, top=high)."""
        lines = ["      " + " ".join(f"{w * 100:4.1f}" for w in self.widths_m)
                 + "   (symbol width, cm)"]
        for i in reversed(range(len(self.heights_m))):
            cells = "    ".join("#" if self.decodable[i, j] else "."
                                for j in range(len(self.widths_m)))
            lines.append(f"{self.heights_m[i]:5.2f} {cells}")
        lines.append("(height, m;  # = decodable)")
        return "\n".join(lines)


def sweep_decodability(setup: IndoorSetup,
                       heights_m: np.ndarray,
                       widths_m: np.ndarray,
                       runner: BatchRunner | None = None,
                       ) -> DecodabilityGrid:
    """Probe every (height, width) grid point through the engine.

    Every cell fans out into one scenario per noise seed; the whole
    (height x width x seed) batch executes through ``runner`` — pass a
    parallel, cached :class:`~repro.engine.BatchRunner` to spread the
    sweep across cores and make repeated sweeps near-free.  A cell is
    decodable when the majority of its seeds recover the exact payload
    (the same vote :func:`repro.core.capacity.probe_decodable` takes).

    The default runner spreads the batch over every core — unlike the
    old serial loop, the full grid is probed (no monotonicity
    early-exit), so parallelism is what keeps the sweep cheap.
    """
    heights = np.sort(np.asarray(heights_m, dtype=float))
    widths = np.sort(np.asarray(widths_m, dtype=float))
    if len(heights) == 0 or len(widths) == 0:
        raise ValueError("sweep grids must be non-empty")
    runner = runner or BatchRunner.local()
    specs = []
    for width in widths:
        # The sampling rate follows the symbol width, so the grid is
        # expanded per column with (height x seed) as the inner axes.
        specs.extend(expand_grid(
            probe_spec(setup, heights[0], float(width), setup.seeds[0]),
            {"receiver_height_m": [float(h) for h in heights],
             "seed": list(setup.seeds)}))
    records = runner.run(specs).records
    grid = np.zeros((len(heights), len(widths)), dtype=bool)
    n_seeds = len(setup.seeds)
    index = 0
    for j in range(len(widths)):
        for i in range(len(heights)):
            cell = records[index:index + n_seeds]
            index += n_seeds
            grid[i, j] = sum(r.success for r in cell) * 2 > n_seeds
    return DecodabilityGrid(heights_m=heights, widths_m=widths,
                            decodable=grid)


def sweep_scenario_family(expr: str, count: int = 100, seed: int = 0,
                          template: ScenarioSpec | None = None,
                          runner: BatchRunner | None = None) -> BatchResult:
    """Expand a scenario family (or composition) and run it.

    The analysis-layer entry to the scenario zoo: any registered family
    expression (``"convoy"``, ``"highway*fog"``) becomes one engine
    batch — parallel across cores by default, cacheable by passing a
    runner with a :class:`~repro.engine.ResultCache`.

    Args:
        expr: family name or ``*``-composition (see
            :func:`repro.scenarios.family_names`).
        count: scenarios to draw.
        seed: expansion seed (same seed -> same scenarios).
        template: base spec the family varies.
        runner: batch runner; defaults to one worker per core.
    """
    specs = expand_family(expr, count=count, seed=seed, template=template)
    return (runner or BatchRunner.local()).run(specs)


@dataclass
class FusionGainSweep:
    """The Section 6 improvement curve: decode rate vs receiver count.

    Attributes:
        n_receivers: swept receiver counts (ascending).
        fused_rates: network fused decode rate per count.
        best_node_rates: best-single-receiver decode rate per count.
        mean_gains: mean per-pass fusion gain per count.
        mean_speed_errors: mean relative tracked-speed error per count
            (None where no pass produced an estimate — single-receiver
            rows never track).
        records: every underlying run record, grouped per count.
    """

    n_receivers: list[int]
    fused_rates: list[float]
    best_node_rates: list[float]
    mean_gains: list[float]
    mean_speed_errors: list[float | None]
    records: dict[int, list[RunRecord]] = field(default_factory=dict)

    def render(self) -> str:
        """ASCII table of the improvement curve."""
        from .reporting import format_table

        rows = [(n, f"{f:.3f}", f"{b:.3f}", f"{g:+.3f}",
                 "-" if e is None else f"{e:.3f}")
                for n, f, b, g, e in zip(
                    self.n_receivers, self.fused_rates,
                    self.best_node_rates, self.mean_gains,
                    self.mean_speed_errors)]
        return format_table(
            ["receivers", "fused rate", "best node rate", "fusion gain",
             "speed err"], rows)


def sweep_fusion_gain(n_receivers: tuple[int, ...] = (1, 2, 3, 4, 5),
                      count: int = 40, seed: int = 0,
                      template: ScenarioSpec | None = None,
                      runner: BatchRunner | None = None,
                      family: str = "corridor") -> FusionGainSweep:
    """Decode rate vs number of networked receivers (Section 6 claim).

    Draws ``count`` noise-stressed passes from ``family`` once, then
    replays the *same* passes at every receiver count, so the curve
    isolates the networking effect from scenario sampling noise.  Runs
    as one engine batch — parallel across cores by default, cacheable
    via a runner with a :class:`~repro.engine.ResultCache`.

    Args:
        n_receivers: receiver counts to sweep (1 = the single-receiver
            baseline pipeline).
        count: passes drawn from the family per count.
        seed: family expansion seed.
        template: base spec the family varies.
        runner: batch runner; defaults to one worker per core.
    """
    if not n_receivers:
        raise ValueError("n_receivers must be non-empty")
    counts = sorted(set(int(n) for n in n_receivers))
    if counts[0] < 1:
        raise ValueError(f"receiver counts must be >= 1, got {counts[0]}")
    # Resolve the bases *before* replicating across receiver counts:
    # family specs carry seed=None, and the derived seed hashes the
    # whole spec (n_receivers included), so an unresolved base would
    # re-draw a different pass realization at every count — the exact
    # sampling noise this sweep is meant to hold fixed.
    bases = [base.resolve() for base in
             expand_family(family, count=count, seed=seed,
                           template=template)]
    specs = [base.replace(n_receivers=n)
             for n in counts for base in bases]
    records = (runner or BatchRunner.local()).run(specs).records
    sweep = FusionGainSweep(n_receivers=counts, fused_rates=[],
                            best_node_rates=[], mean_gains=[],
                            mean_speed_errors=[])
    for i, n in enumerate(counts):
        group = records[i * len(bases):(i + 1) * len(bases)]
        stats = fusion_stats(group)
        sweep.records[n] = group
        sweep.fused_rates.append(stats["fused_rate"])
        sweep.best_node_rates.append(stats["best_node_rate"])
        sweep.mean_gains.append(stats["mean_fusion_gain"])
        sweep.mean_speed_errors.append(stats["mean_speed_error"])
    return sweep


def sweep_frontier(setup: IndoorSetup, widths_m: np.ndarray,
                   height_lo_m: float = 0.18,
                   height_hi_m: float = 0.9,
                   tolerance_m: float = 0.02,
                   ) -> list[tuple[float, float]]:
    """Max decodable height per width via bisection (Fig. 6(a) curve)."""
    from ..core.capacity import max_decodable_height

    out: list[tuple[float, float]] = []
    for width in np.sort(np.asarray(widths_m, dtype=float)):
        h = max_decodable_height(setup, float(width),
                                 height_lo_m=height_lo_m,
                                 height_hi_m=height_hi_m,
                                 tolerance_m=tolerance_m)
        if h is not None:
            out.append((float(width), h))
    return out


def sweep_throughput(setup: IndoorSetup, heights_m: np.ndarray,
                     width_lo_m: float = 0.008,
                     width_hi_m: float = 0.14,
                     tolerance_m: float = 0.003,
                     ) -> list[tuple[float, float]]:
    """Throughput (symbols/s) per height (Fig. 6(b) curve).

    For each height, bisect for the narrowest decodable width and report
    ``speed / width``; heights where nothing decodes are omitted.
    """
    out: list[tuple[float, float]] = []
    for height in np.sort(np.asarray(heights_m, dtype=float)):
        width = min_decodable_width(setup, float(height),
                                    width_lo_m=width_lo_m,
                                    width_hi_m=width_hi_m,
                                    tolerance_m=tolerance_m)
        if width is not None:
            out.append((float(height), setup.speed_mps / width))
    return out
