"""Decode-rate waterfall curves: failure analysis beyond single points.

The paper reports single operating points (decodable at 450 lux, not at
100 lux).  A downstream user needs the full curve: how the decode rate
falls as the ambient light dims, as dirt accumulates on the tag, or as
fog thickens.  This module sweeps those stressors through the complete
stack and reports per-point decode rates with the crossover (the
stressor level where the rate first drops below a target).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..channel.distortion import Atmosphere
from ..channel.mobility import ConstantSpeed
from ..channel.scene import MovingObject, PassiveScene
from ..channel.simulator import ChannelSimulator, SimulatorConfig
from ..core.decoder import AdaptiveThresholdDecoder
from ..core.errors import DecodeError, PreambleNotFoundError
from ..hardware.frontend import ReceiverFrontEnd
from ..optics.materials import TARMAC, Material
from ..optics.sources import Sun
from ..tags.packet import Packet
from ..tags.surface import TagSurface

__all__ = ["WaterfallPoint", "WaterfallCurve", "decode_rate",
           "noise_floor_waterfall", "dirt_waterfall", "fog_waterfall"]


@dataclass(frozen=True)
class WaterfallPoint:
    """One stressor level's outcome.

    Attributes:
        stress: the swept parameter's value.
        decode_rate: fraction of seeded passes decoded exactly.
    """

    stress: float
    decode_rate: float


@dataclass
class WaterfallCurve:
    """A decode-rate curve over a swept stressor.

    Attributes:
        parameter: name of the swept quantity.
        points: outcomes, in sweep order.
    """

    parameter: str
    points: list[WaterfallPoint] = field(default_factory=list)

    def crossover(self, target_rate: float = 0.5) -> float | None:
        """First stress level where the rate drops below ``target_rate``.

        Points are scanned in sweep order; None when the rate never
        drops below the target.
        """
        if not 0.0 < target_rate <= 1.0:
            raise ValueError("target rate must be in (0, 1]")
        for point in self.points:
            if point.decode_rate < target_rate:
                return point.stress
        return None

    def rates(self) -> list[float]:
        """Decode rates in sweep order."""
        return [p.decode_rate for p in self.points]

    def render(self, width: int = 30) -> str:
        """ASCII rendering of the curve."""
        lines = [f"decode rate vs {self.parameter}"]
        for p in self.points:
            bar = "#" * int(round(width * p.decode_rate))
            lines.append(f"{p.stress:10.3g} | {bar} {p.decode_rate:.2f}")
        return "\n".join(lines)


def decode_rate(scene_factory: Callable[[int], PassiveScene],
                frontend_factory: Callable[[int], ReceiverFrontEnd],
                expected_bits: str,
                n_data_symbols: int,
                seeds: Sequence[int] = (2, 3, 4, 5, 6),
                sample_rate_hz: float = 2_000.0) -> float:
    """Fraction of seeded passes whose decode matches ``expected_bits``."""
    if not seeds:
        raise ValueError("need at least one seed")
    decoder = AdaptiveThresholdDecoder()
    wins = 0
    for seed in seeds:
        sim = ChannelSimulator(
            scene_factory(seed), frontend_factory(seed),
            SimulatorConfig(sample_rate_hz=sample_rate_hz, seed=seed))
        try:
            result = decoder.decode(sim.capture_pass(),
                                    n_data_symbols=n_data_symbols)
        except (PreambleNotFoundError, DecodeError):
            continue
        wins += result.bit_string() == expected_bits
    return wins / len(seeds)


def _outdoor_scene(tag: TagSurface, lux: float, height: float,
                   speed: float, atmosphere: Atmosphere | None = None,
                   ground: Material = TARMAC) -> PassiveScene:
    scene = PassiveScene(
        source=Sun(ground_lux=lux), receiver_height_m=height,
        ground=ground,
        objects=[MovingObject(tag, ConstantSpeed(speed, -1.5), "tag")])
    if atmosphere is not None:
        scene.atmosphere = atmosphere
    return scene


def noise_floor_waterfall(frontend_factory: Callable[[int], ReceiverFrontEnd],
                          lux_levels: Sequence[float],
                          bits: str = "00",
                          symbol_width_m: float = 0.1,
                          height_m: float = 0.25,
                          speed_mps: float = 5.0,
                          seeds: Sequence[int] = (2, 3, 4, 5, 6),
                          ) -> WaterfallCurve:
    """Decode rate vs ambient noise floor (generalises Fig. 15)."""
    packet = Packet.from_bitstring(bits, symbol_width_m=symbol_width_m)
    curve = WaterfallCurve(parameter="noise floor (lux)")
    for lux in lux_levels:
        rate = decode_rate(
            lambda seed, lux=lux: _outdoor_scene(
                TagSurface.from_packet(packet), lux, height_m, speed_mps),
            frontend_factory, packet.bit_string(),
            2 * len(packet.data_bits), seeds)
        curve.points.append(WaterfallPoint(stress=float(lux),
                                           decode_rate=rate))
    return curve


def dirt_waterfall(frontend_factory: Callable[[int], ReceiverFrontEnd],
                   dirt_levels: Sequence[float],
                   bits: str = "00",
                   symbol_width_m: float = 0.1,
                   lux: float = 6200.0,
                   height_m: float = 0.75,
                   speed_mps: float = 5.0,
                   seeds: Sequence[int] = (2, 3, 4, 5, 6),
                   ) -> WaterfallCurve:
    """Decode rate vs tag dirt coverage (the Section 3 distortion)."""
    packet = Packet.from_bitstring(bits, symbol_width_m=symbol_width_m)
    clean = TagSurface.from_packet(packet)
    curve = WaterfallCurve(parameter="dirt factor")
    for dirt in dirt_levels:
        if not 0.0 <= dirt <= 1.0:
            raise ValueError(f"dirt factor must be in [0, 1], got {dirt}")
        tag = clean.degraded(dirt) if dirt > 0.0 else clean
        rate = decode_rate(
            lambda seed, tag=tag: _outdoor_scene(tag, lux, height_m,
                                                 speed_mps),
            frontend_factory, packet.bit_string(),
            2 * len(packet.data_bits), seeds)
        curve.points.append(WaterfallPoint(stress=float(dirt),
                                           decode_rate=rate))
    return curve


def fog_waterfall(frontend_factory: Callable[[int], ReceiverFrontEnd],
                  visibilities_m: Sequence[float],
                  bits: str = "00",
                  symbol_width_m: float = 0.1,
                  lux: float = 6200.0,
                  height_m: float = 0.75,
                  speed_mps: float = 5.0,
                  seeds: Sequence[int] = (2, 3, 4, 5, 6),
                  ) -> WaterfallCurve:
    """Decode rate vs meteorological visibility (fog stress).

    Swept from clear towards dense fog; note the stress axis is
    *decreasing* visibility.
    """
    packet = Packet.from_bitstring(bits, symbol_width_m=symbol_width_m)
    tag = TagSurface.from_packet(packet)
    curve = WaterfallCurve(parameter="visibility (m), decreasing")
    for vis in visibilities_m:
        atmosphere = Atmosphere.from_visibility(vis)
        rate = decode_rate(
            lambda seed, a=atmosphere: _outdoor_scene(
                tag, lux, height_m, speed_mps, atmosphere=a),
            frontend_factory, packet.bit_string(),
            2 * len(packet.data_bits), seeds)
        curve.points.append(WaterfallPoint(stress=float(vis),
                                           decode_rate=rate))
    return curve
