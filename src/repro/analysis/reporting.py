"""Plain-text rendering of experiment results and sweep tables."""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from .experiments import ExperimentResult

__all__ = ["format_table", "format_series", "summarize_results"]


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[Any]]) -> str:
    """Render rows as an aligned ASCII table."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row {row} has {len(row)} cells, expected {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def format_series(xs: Sequence[float], ys: Sequence[float],
                  x_label: str, y_label: str,
                  width: int = 48) -> str:
    """Tiny ASCII line chart: one row per point with a proportional bar.

    Bars scale with ``|y| / max|y|``; negative values render as ``-``
    bars instead of masquerading as small positive ``#`` bars, and
    zeros get no bar at all.
    """
    if len(xs) != len(ys):
        raise ValueError("series lengths differ")
    if not xs:
        return "(empty series)"
    y_scale = max(abs(y) for y in ys)
    lines = [f"{y_label} vs {x_label}"]
    for x, y in zip(xs, ys):
        if y_scale > 0.0 and y != 0.0:
            n = max(1, int(round(width * abs(y) / y_scale)))
            bar = ("#" if y > 0.0 else "-") * n
        else:
            bar = ""
        lines.append(f"{x:8.3f} | {bar} {y:.3g}")
    return "\n".join(lines)


def summarize_results(results: Iterable[ExperimentResult]) -> str:
    """One-line-per-experiment pass/fail summary table."""
    rows = [(r.experiment_id, "PASS" if r.passed else "FAIL", r.title)
            for r in results]
    return format_table(["experiment", "verdict", "title"], rows)
