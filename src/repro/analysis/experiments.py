"""One reproduction function per paper figure/table.

Every experiment returns an :class:`ExperimentResult` holding the
measured series, the paper's claim, and a shape-level pass verdict.
Benchmarks call these functions and print the paper-vs-measured rows;
EXPERIMENTS.md is the curated record of their output.

Scene parameters follow the paper exactly where stated (heights, symbol
widths, speeds, noise floors, sampling rate); unstated constants (lamp
intensity, sun elevation) are fixed at the values calibrated in
DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..channel.mobility import ConstantSpeed, speed_doubling_profile
from ..channel.scene import MovingObject, PassiveScene
from ..channel.simulator import ChannelSimulator, SimulatorConfig
from ..channel.trace import SignalTrace
from ..core.capacity import IndoorSetup
from ..core.classifier import DtwClassifier
from ..core.collision import CollisionAnalyzer
from ..core.decoder import AdaptiveThresholdDecoder
from ..core.errors import DecodeError, PreambleNotFoundError
from ..core.receiver_select import DualReceiverController
from ..engine import BatchRunner, ScenarioSpec, expand_grid, success_rate_by
from ..hardware.frontend import FovCap, ReceiverFrontEnd
from ..hardware.led_receiver import LedReceiver
from ..hardware.photodiode import PdGain, Photodiode, normalized_sensitivity
from ..optics.geometry import Vec3
from ..optics.materials import TARMAC
from ..optics.sources import FluorescentCeiling, LedLamp, Sun
from ..tags.packet import Packet
from ..tags.surface import TagSurface
from ..vehicles.profiles import bmw_3_series, volvo_v40
from ..vehicles.rooftag import TaggedCar, TwoPhaseDecoder
from ..vehicles.signature import extract_signature, match_car
from .metrics import fit_exponential, fit_linear
from .sweeps import sweep_frontier, sweep_throughput

__all__ = [
    "ExperimentResult",
    "experiment_fig5",
    "experiment_fig6a",
    "experiment_fig6b",
    "experiment_fig7",
    "experiment_fig8",
    "experiment_fig10",
    "experiment_fig11",
    "experiment_fig13",
    "experiment_fig14",
    "experiment_fig15",
    "experiment_fig16",
    "experiment_fig17",
]

#: Outdoor car speed used throughout Section 5 (18 km/h).
CAR_SPEED_MPS = 5.0

#: Outdoor symbol width (Section 5).
CAR_SYMBOL_WIDTH_M = 0.1

#: Outdoor ADC sampling rate (Section 5).
OUTDOOR_SAMPLE_RATE_HZ = 2_000.0


@dataclass
class ExperimentResult:
    """Outcome of reproducing one figure or table.

    Attributes:
        experiment_id: e.g. ``"fig6a"``.
        title: short description.
        paper_claim: what the paper reports (shape-level).
        measured: the reproduction's key numbers.
        passed: whether the shape-level claim holds.
        series: raw data series for inspection/plotting.
        notes: calibration caveats and substitutions.
    """

    experiment_id: str
    title: str
    paper_claim: str
    measured: dict[str, Any]
    passed: bool
    series: dict[str, Any] = field(default_factory=dict)
    notes: str = ""

    def report(self) -> str:
        """Multi-line paper-vs-measured report."""
        lines = [
            f"[{self.experiment_id}] {self.title}",
            f"  paper:    {self.paper_claim}",
            "  measured:",
        ]
        for key, value in self.measured.items():
            lines.append(f"    {key}: {value}")
        lines.append(f"  verdict:  {'PASS' if self.passed else 'FAIL'}")
        if self.notes:
            lines.append(f"  notes:    {self.notes}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Shared scene builders
# ----------------------------------------------------------------------

def indoor_capture(bits: str, symbol_width_m: float, height_m: float,
                   speed_mps: float = 0.08,
                   motion=None,
                   lamp_intensity_cd: float = 2.0,
                   pd_gain: PdGain = PdGain.G1,
                   sample_rate_hz: float = 500.0,
                   seed: int = 7) -> tuple[SignalTrace, Packet]:
    """One dark-room pass (Sections 4.1-4.3 setup)."""
    packet = Packet.from_bitstring(bits, symbol_width_m=symbol_width_m)
    tag = TagSurface.from_packet(packet)
    frontend = ReceiverFrontEnd(
        detector=Photodiode.opt101(gain=pd_gain),
        cap=FovCap.paper_cap(), seed=seed)
    if motion is None:
        motion = ConstantSpeed(speed_mps, -(0.6 * height_m
                                            + 3.0 * symbol_width_m))
    scene = PassiveScene(
        source=LedLamp(position=Vec3(0.12, 0.0, height_m),
                       luminous_intensity=lamp_intensity_cd),
        receiver_height_m=height_m,
        objects=[MovingObject(tag, motion, "tag")])
    sim = ChannelSimulator(scene, frontend,
                           SimulatorConfig(sample_rate_hz=sample_rate_hz,
                                           seed=seed))
    return sim.capture_pass(), packet


def outdoor_tag_capture(bits: str, noise_floor_lux: float, height_m: float,
                        receiver: ReceiverFrontEnd,
                        symbol_width_m: float = CAR_SYMBOL_WIDTH_M,
                        speed_mps: float = CAR_SPEED_MPS,
                        seed: int = 3) -> tuple[SignalTrace, Packet]:
    """A bare tag passing outdoors (no car body)."""
    packet = Packet.from_bitstring(bits, symbol_width_m=symbol_width_m)
    tag = TagSurface.from_packet(packet)
    receiver.seed = seed
    scene = PassiveScene(
        source=Sun(ground_lux=noise_floor_lux),
        receiver_height_m=height_m, ground=TARMAC,
        objects=[MovingObject(tag, ConstantSpeed(speed_mps, -1.5), "tag")])
    sim = ChannelSimulator(scene, receiver,
                           SimulatorConfig(
                               sample_rate_hz=OUTDOOR_SAMPLE_RATE_HZ,
                               seed=seed))
    return sim.capture_pass(), packet


def outdoor_car_capture(bits: str | None, noise_floor_lux: float,
                        height_m: float, receiver: ReceiverFrontEnd,
                        car=None, seed: int = 3) -> tuple[SignalTrace, Packet | None]:
    """A (possibly tagged) car passing outdoors at 18 km/h."""
    car = car if car is not None else volvo_v40()
    packet = None
    if bits is not None:
        packet = Packet.from_bitstring(bits,
                                       symbol_width_m=CAR_SYMBOL_WIDTH_M)
        surface = TaggedCar(car=car, packet=packet).surface()
    else:
        surface = car
    receiver.seed = seed
    scene = PassiveScene(
        source=Sun(ground_lux=noise_floor_lux),
        receiver_height_m=height_m, ground=TARMAC,
        objects=[MovingObject(surface, ConstantSpeed(CAR_SPEED_MPS, -1.5),
                              car.model)])
    sim = ChannelSimulator(scene, receiver,
                           SimulatorConfig(
                               sample_rate_hz=OUTDOOR_SAMPLE_RATE_HZ,
                               seed=seed))
    return sim.capture_pass(), packet


def _decode_ok(trace: SignalTrace, packet: Packet,
               decoder: AdaptiveThresholdDecoder | None = None) -> bool:
    decoder = decoder or AdaptiveThresholdDecoder()
    try:
        result = decoder.decode(trace,
                                n_data_symbols=2 * len(packet.data_bits))
    except (PreambleNotFoundError, DecodeError):
        return False
    return result.bit_string() == packet.bit_string()


def outdoor_tag_spec(bits: str, noise_floor_lux: float,
                     height_m: float) -> ScenarioSpec:
    """Engine spec for a bare tag passing outdoors under the RX-LED.

    Matches :func:`outdoor_tag_capture` + the adaptive decoder exactly
    (same sun, tarmac, 18 km/h pass from -1.5 m, 2 kS/s).
    """
    return ScenarioSpec(
        bits=bits,
        symbol_width_m=CAR_SYMBOL_WIDTH_M,
        receiver_height_m=height_m,
        speed_mps=CAR_SPEED_MPS,
        source="sun",
        ground_lux=noise_floor_lux,
        detector="led",
        cap=False,
        ground="tarmac",
        start_position_m=-1.5,
        sample_rate_hz=OUTDOOR_SAMPLE_RATE_HZ,
    )


def outdoor_car_spec(bits: str, noise_floor_lux: float, height_m: float,
                     car: str = "volvo_v40") -> ScenarioSpec:
    """Engine spec for a tagged car decoded with the two-phase decoder.

    Matches :func:`outdoor_car_capture` + :class:`TwoPhaseDecoder`.
    """
    return outdoor_tag_spec(bits, noise_floor_lux, height_m).replace(
        car=car, decoder="two_phase")


# ----------------------------------------------------------------------
# Section 4.1 — Figs. 5, 6(a), 6(b)
# ----------------------------------------------------------------------

def experiment_fig5(seed: int = 7) -> ExperimentResult:
    """Fig. 5: clean decode of codes '00' and '10' in the ideal scenario."""
    results: dict[str, Any] = {}
    traces: dict[str, SignalTrace] = {}
    ok_all = True
    for bits in ("00", "10"):
        trace, packet = indoor_capture(bits, symbol_width_m=0.03,
                                       height_m=0.2, seed=seed)
        ok = _decode_ok(trace, packet)
        results[f"code_{bits}_decoded"] = ok
        traces[bits] = trace.normalized()
        ok_all = ok_all and ok
    return ExperimentResult(
        experiment_id="fig5",
        title="Ideal-scenario decoding (LED lamp, dark room, 3 cm symbols, "
              "h = 20 cm, 8 cm/s)",
        paper_claim="Both packets ('00' -> HLHL, '10' -> LHHL) are cleanly "
                    "decodable with the adaptive thresholds",
        measured=results,
        passed=ok_all,
        series={"normalized_traces": traces},
    )


def experiment_fig6a(quick: bool = True) -> ExperimentResult:
    """Fig. 6(a): max decodable height grows ~linearly with symbol width."""
    setup = IndoorSetup(seeds=(11, 23) if quick else (11, 23, 47))
    widths = (np.array([0.04, 0.06, 0.08, 0.10]) if quick
              else np.array([0.035, 0.05, 0.065, 0.08, 0.095, 0.11]))
    frontier = sweep_frontier(setup, widths,
                              tolerance_m=0.03 if quick else 0.015)
    if len(frontier) < 3:
        return ExperimentResult(
            experiment_id="fig6a",
            title="Maximal height vs symbol width",
            paper_claim="Linear decodable-region boundary",
            measured={"frontier_points": frontier},
            passed=False,
            notes="too few decodable widths to fit a line")
    ws = np.array([w for w, _ in frontier])
    hs = np.array([h for _, h in frontier])
    fit = fit_linear(ws, hs)
    passed = fit.slope > 0.0 and fit.r_squared >= 0.85
    return ExperimentResult(
        experiment_id="fig6a",
        title="Maximal decodable height vs symbol width (8 cm/s)",
        paper_claim="A decodable region bounded by a linear relationship "
                    "between maximal height and symbol width "
                    "(1.5-7.5 cm -> ~0.2-0.5 m)",
        measured={
            "frontier": [(round(w, 3), round(h, 3)) for w, h in frontier],
            "linear_slope_m_per_m": round(fit.slope, 2),
            "r_squared": round(fit.r_squared, 3),
        },
        passed=passed,
        series={"widths_m": ws.tolist(), "max_heights_m": hs.tolist()},
        notes="absolute frontier sits at slightly wider symbols than the "
              "paper's (capped-PD acceptance is wider than their optics); "
              "the linear shape is the reproduced claim",
    )


def experiment_fig6b(quick: bool = True) -> ExperimentResult:
    """Fig. 6(b): throughput decays steeply (~exponentially) with height."""
    setup = IndoorSetup(seeds=(11, 23) if quick else (11, 23, 47))
    heights = (np.array([0.2, 0.3, 0.4, 0.5]) if quick
               else np.array([0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5]))
    curve = sweep_throughput(setup, heights,
                             tolerance_m=0.004 if quick else 0.002)
    if len(curve) < 3:
        return ExperimentResult(
            experiment_id="fig6b",
            title="Throughput vs height",
            paper_claim="Exponential decay",
            measured={"curve_points": curve},
            passed=False,
            notes="too few decodable heights")
    hs = np.array([h for h, _ in curve])
    ts = np.array([t for _, t in curve])
    exp_fit = fit_exponential(hs, ts)
    decay_ratio = ts[0] / ts[-1] if ts[-1] > 0 else float("inf")
    monotone = bool(np.all(np.diff(ts) <= 1e-9))
    passed = monotone and exp_fit.rate < 0.0 and decay_ratio >= 1.8
    return ExperimentResult(
        experiment_id="fig6b",
        title="Throughput (symbols/s) vs receiver height (8 cm/s)",
        paper_claim="Channel capacity decreases ~exponentially with height "
                    "(~9 -> ~1 symbols/s over 0.2 -> 0.5 m)",
        measured={
            "curve": [(round(h, 3), round(t, 2)) for h, t in curve],
            "exp_rate_per_m": round(exp_fit.rate, 2),
            "exp_fit_r_squared": round(exp_fit.r_squared, 3),
            "decay_ratio_first_to_last": round(decay_ratio, 2),
        },
        passed=passed,
        series={"heights_m": hs.tolist(), "throughput_sps": ts.tolist()},
        notes="decay factor is smaller than the paper's ~9x because the "
              "simulated receiver is blur-limited over most of the range; "
              "monotone steep decay is the reproduced claim",
    )


# ----------------------------------------------------------------------
# Section 4.1 — Fig. 7 (other light sources)
# ----------------------------------------------------------------------

def experiment_fig7(seed: int = 5) -> ExperimentResult:
    """Fig. 7: decoding still works under AC-driven ceiling lights."""
    packet = Packet.from_bitstring("00", symbol_width_m=0.03)
    tag = TagSurface.from_packet(packet)
    frontend = ReceiverFrontEnd(detector=Photodiode.opt101(gain=PdGain.G2),
                                cap=FovCap.paper_cap(), seed=seed)
    scene = PassiveScene(
        source=FluorescentCeiling(ground_lux=300.0, height=2.3),
        receiver_height_m=0.2,
        objects=[MovingObject(tag, ConstantSpeed(0.08, -0.3), "tag")])
    sim = ChannelSimulator(scene, frontend,
                           SimulatorConfig(sample_rate_hz=2000.0, seed=seed))
    trace = sim.capture_pass()
    decoded = _decode_ok(trace, packet)

    # Reference: the dark-room equivalent for ripple/noise-floor compare.
    clean_trace, _ = indoor_capture("00", 0.03, 0.2, seed=seed,
                                    sample_rate_hz=2000.0)

    def ac_ripple_share(t: SignalTrace) -> float:
        """Spectral energy near 100 Hz relative to the symbol band."""
        from ..dsp.spectrum import power_spectrum

        spec = power_spectrum(t.samples, t.sample_rate_hz,
                              detrend_window_s=None)
        ac = spec.band(90.0, 110.0)
        symbol = spec.band(0.5, 10.0)
        denom = float(np.sum(symbol.power**2))
        if denom == 0.0:
            return 0.0
        return float(np.sum(ac.power**2)) / denom

    def modulation_index(t: SignalTrace) -> float:
        """H/L swing relative to the mean level (gap vs noise floor)."""
        mean = t.mean()
        return t.swing() / mean if mean > 0.0 else float("inf")

    ripple_fluor = ac_ripple_share(trace)
    ripple_dark = ac_ripple_share(clean_trace)
    noise_floor = scene.nominal_noise_floor_lux()
    mod_fluor = modulation_index(trace)
    mod_dark = modulation_index(clean_trace)
    passed = (decoded
              and ripple_fluor > 10.0 * max(ripple_dark, 1e-12)
              and noise_floor > 100.0
              and mod_fluor < mod_dark)
    return ExperimentResult(
        experiment_id="fig7",
        title="Decoding under ceiling fluorescent light (2.3 m luminaire, "
              "h = 20 cm receiver)",
        paper_claim="Still decodable; higher noise floor, smaller H/L gap, "
                    "'thicker lines' from the AC power supply",
        measured={
            "decoded": decoded,
            "noise_floor_lux": round(noise_floor, 1),
            "ac_100hz_ripple_share": round(ripple_fluor, 5),
            "dark_room_ripple_share": round(ripple_dark, 7),
            "modulation_index": round(mod_fluor, 3),
            "dark_room_modulation_index": round(mod_dark, 3),
        },
        passed=passed,
        series={"normalized_trace": trace.normalized()},
    )


# ----------------------------------------------------------------------
# Section 4.2 — Fig. 8 (variable speed + DTW)
# ----------------------------------------------------------------------

def experiment_fig8(seed: int = 9) -> ExperimentResult:
    """Fig. 8: speed doubling breaks decoding; DTW classifies correctly."""
    clean00, p00 = indoor_capture("00", 0.03, 0.2, seed=6)
    clean10, p10 = indoor_capture("10", 0.03, 0.2, seed=6)
    motion = speed_doubling_profile(p10.length_m, 0.08, -0.3)
    distorted, _ = indoor_capture("10", 0.03, 0.2, motion=motion, seed=seed)

    decoder = AdaptiveThresholdDecoder()
    threshold_bits = ""
    threshold_symbols = ""
    try:
        res = decoder.decode(distorted, n_data_symbols=4)
        threshold_bits = res.bit_string()
        threshold_symbols = res.symbol_string()
    except (PreambleNotFoundError, DecodeError):
        pass
    threshold_fails = threshold_bits != "10"

    classifier = DtwClassifier()
    classifier.add_template("00", clean00)
    classifier.add_template("10", clean10)
    outcome = classifier.classify(distorted)
    d_wrong = outcome.distances["00"]
    d_correct = outcome.distances["10"]
    self_distance = classifier.distance_to(
        [t for t in classifier.templates if t.label == "10"][0], clean10)

    passed = (threshold_fails and outcome.label == "10"
              and d_correct < d_wrong)
    return ExperimentResult(
        experiment_id="fig8",
        title="Variable speed distortion (speed doubles mid-packet) + DTW",
        paper_claim="Threshold decoder outputs a wrong sequence "
                    "('HLHL.HL' instead of 'HLHL.LHHL'); DTW distances "
                    "326 (wrong '00') vs 172 (correct '10'), self 131 — "
                    "the distorted packet classifies as '10'",
        measured={
            "threshold_decode_symbols": threshold_symbols or "(acquisition failed)",
            "threshold_decode_wrong": threshold_fails,
            "dtw_distance_to_00": round(d_wrong, 1),
            "dtw_distance_to_10": round(d_correct, 1),
            "self_distance_10": round(self_distance, 1),
            "classified_as": outcome.label,
        },
        passed=passed,
        series={"distorted_trace": distorted.normalized()},
        notes="absolute DTW distances depend on sampling/normalisation; "
              "the reproduced claim is the ordering "
              "d(correct) < d(wrong) and the correct classification",
    )


# ----------------------------------------------------------------------
# Section 4.3 — Fig. 10 (collisions)
# ----------------------------------------------------------------------

def _collision_capture(share_low: float, share_high: float,
                       seed: int = 11) -> tuple[SignalTrace, Packet, Packet]:
    low_pkt = Packet.from_bitstring("00", symbol_width_m=0.08)
    high_pkt = Packet.from_bitstring("000000", symbol_width_m=0.04)
    frontend = ReceiverFrontEnd(detector=Photodiode.opt101(gain=PdGain.G1),
                                cap=FovCap.paper_cap(), seed=seed)
    scene = PassiveScene(
        source=LedLamp(position=Vec3(0.12, 0.0, 0.2),
                       luminous_intensity=2.0),
        receiver_height_m=0.2,
        objects=[
            MovingObject(TagSurface.from_packet(low_pkt, label="low-freq"),
                         ConstantSpeed(0.16, -0.3), "low",
                         fov_share=share_low),
            MovingObject(TagSurface.from_packet(high_pkt, label="high-freq"),
                         ConstantSpeed(0.16, -0.3), "high",
                         fov_share=share_high),
        ])
    sim = ChannelSimulator(scene, frontend,
                           SimulatorConfig(sample_rate_hz=500.0, seed=seed))
    return sim.capture_pass(), low_pkt, high_pkt


def experiment_fig10(seed: int = 11) -> ExperimentResult:
    """Fig. 10: packet collisions in time and frequency domain."""
    analyzer = CollisionAnalyzer(min_separation_hz=0.7,
                                 min_relative_height=0.3)
    decoder = AdaptiveThresholdDecoder()
    measured: dict[str, Any] = {}
    series: dict[str, Any] = {}

    def decodes_as(trace: SignalTrace, packet: Packet) -> bool:
        try:
            res = decoder.decode(trace,
                                 n_data_symbols=2 * len(packet.data_bits))
        except (PreambleNotFoundError, DecodeError):
            return False
        return res.bit_string() == packet.bit_string()

    # Case 1: low-frequency packet dominates.
    trace1, low_pkt, high_pkt = _collision_capture(0.85, 0.15, seed)
    case1_ok = decodes_as(trace1, low_pkt)
    freqs1 = analyzer.spectrum_peaks(trace1)
    measured["case1_decodes_dominant"] = case1_ok
    measured["case1_peak_frequencies_hz"] = [round(f, 2) for f in freqs1]

    # Case 2: high-frequency packet dominates.
    trace2, _, _ = _collision_capture(0.15, 0.85, seed)
    case2_ok = decodes_as(trace2, high_pkt)
    freqs2 = analyzer.spectrum_peaks(trace2)
    measured["case2_decodes_dominant"] = case2_ok
    measured["case2_peak_frequencies_hz"] = [round(f, 2) for f in freqs2]

    # Case 3: equal shares — undecodable, two spectral components.
    trace3, _, _ = _collision_capture(0.5, 0.5, seed)
    case3_low = decodes_as(trace3, low_pkt)
    case3_high = decodes_as(trace3, high_pkt)
    freqs3 = analyzer.spectrum_peaks(trace3)
    measured["case3_decodes_either"] = case3_low or case3_high
    measured["case3_peak_frequencies_hz"] = [round(f, 2) for f in freqs3]

    series["traces"] = {"case1": trace1.normalized(),
                        "case2": trace2.normalized(),
                        "case3": trace3.normalized()}

    f_low_expected = 0.16 / (2 * 0.08)   # 1.0 Hz
    f_high_expected = 0.16 / (2 * 0.04)  # 2.0 Hz
    case1_freq_ok = (len(freqs1) >= 1
                     and abs(freqs1[0] - f_low_expected) < 0.3)
    case2_freq_ok = (len(freqs2) >= 1
                     and abs(freqs2[0] - f_high_expected) < 0.3)
    case3_freq_ok = (len(freqs3) >= 2
                     and any(abs(f - f_low_expected) < 0.3 for f in freqs3)
                     and any(abs(f - f_high_expected) < 0.3 for f in freqs3))
    passed = (case1_ok and case2_ok
              and not (case3_low or case3_high)
              and case1_freq_ok and case2_freq_ok and case3_freq_ok)
    return ExperimentResult(
        experiment_id="fig10",
        title="Two overlapping packets sharing the FoV",
        paper_claim="Cases 1-2 (one packet dominates): time-domain "
                    "decodable, single dominant FFT peak.  Case 3 (equal "
                    "share): undecodable, but the FFT reveals two distinct "
                    "components",
        measured=measured,
        passed=passed,
        series=series,
    )


# ----------------------------------------------------------------------
# Section 4.4 — Fig. 11 (receiver table)
# ----------------------------------------------------------------------

def experiment_fig11() -> ExperimentResult:
    """Fig. 11: saturation and sensitivity of the four receiver configs."""
    paper_table = {
        "PD-G1": (450.0, 1.0),
        "PD-G2": (1200.0, 0.45),
        "PD-G3": (5000.0, 0.089),
        "RX-LED": (35000.0, 0.013),
    }
    detectors = {
        "PD-G1": Photodiode.opt101(gain=PdGain.G1),
        "PD-G2": Photodiode.opt101(gain=PdGain.G2),
        "PD-G3": Photodiode.opt101(gain=PdGain.G3),
        "RX-LED": LedReceiver.red_5mm(),
    }
    measured: dict[str, Any] = {}
    passed = True
    for name, det in detectors.items():
        paper_sat, paper_sens = paper_table[name]
        # Measure the saturation onset from the static transfer curve.
        lux = np.linspace(0.0, 1.3 * paper_sat, 4001)
        response = det.respond(lux)
        railed = lux[response >= 1.0 - 1e-9]
        measured_sat = float(railed[0]) if len(railed) else float("inf")
        # Measure the small-signal sensitivity from the slope.
        measured_sens = normalized_sensitivity(det)
        sat_err = abs(measured_sat - paper_sat) / paper_sat
        sens_err = abs(measured_sens - paper_sens) / paper_sens
        measured[name] = {
            "saturation_lux": round(measured_sat, 1),
            "paper_saturation_lux": paper_sat,
            "relative_sensitivity": round(measured_sens, 4),
            "paper_relative_sensitivity": paper_sens,
        }
        # Sensitivity tolerance is generous: the paper's own column is
        # only approximately inverse to saturation (0.45 vs 0.375).
        passed = passed and sat_err < 0.02 and sens_err < 0.25
    # Behavioural check: the Section 4.4 selection policy.
    controller = DualReceiverController()
    selection = controller.selection_table([100.0, 450.0, 2000.0, 10_000.0])
    measured["selection_policy"] = selection
    policy_ok = (selection[0][1] == "PD-G1"
                 and selection[-1][1] == "RX-LED")
    passed = passed and policy_ok
    return ExperimentResult(
        experiment_id="fig11",
        title="Supported noise floor and sensitivity of PD (G1-G3) and "
              "RX-LED",
        paper_claim="Saturation 450 / 1200 / 5000 / 35000 lux; sensitivity "
                    "1 / 0.45 / 0.089 / 0.013 (normalised to PD-G1); a "
                    "dual receiver selects the component matching the "
                    "ambient conditions",
        measured=measured,
        passed=passed,
        notes="sensitivity follows 450/saturation by construction; the "
              "paper's measured 0.45 vs model 0.375 for G2 is within the "
              "tolerance band",
    )


# ----------------------------------------------------------------------
# Section 5.1 — Figs. 13-14 (car signatures)
# ----------------------------------------------------------------------

def _signature_experiment(car, fig_id: str, expected_pattern: str,
                          seed: int = 3) -> ExperimentResult:
    receiver = ReceiverFrontEnd(detector=LedReceiver.red_5mm(), seed=seed)
    trace, _ = outdoor_car_capture(None, 5000.0, 0.75, receiver, car=car,
                                   seed=seed)
    signature = extract_signature(trace)
    matched = match_car(signature, [volvo_v40(), bmw_3_series()])
    passed = (signature.pattern == expected_pattern
              and matched is not None and matched.model == car.model)
    return ExperimentResult(
        experiment_id=fig_id,
        title=f"Optical signature of the {car.model} (bare car, RX-LED, "
              "18 km/h)",
        paper_claim="Metal panels (hood/roof/trunk) produce peaks, "
                    "windshields produce valleys; the waveform identifies "
                    "the car design",
        measured={
            "pattern": signature.pattern,
            "expected_pattern": expected_pattern,
            "matched_model": matched.model if matched else None,
            "n_peaks": signature.n_peaks(),
            "n_valleys": signature.n_valleys(),
        },
        passed=passed,
        series={"normalized_trace": trace.normalized()},
    )


def experiment_fig13(seed: int = 3) -> ExperimentResult:
    """Fig. 13: Volvo V40 signature — hood A, windshield B, roof C,
    rear window D (the short tailgate lip adds Fig. 13's small rise at
    the very tail)."""
    return _signature_experiment(volvo_v40(), "fig13", "PVPVP", seed=seed)


def experiment_fig14(seed: int = 3) -> ExperimentResult:
    """Fig. 14: BMW 3 signature — adds the trunk peak E."""
    return _signature_experiment(bmw_3_series(), "fig14", "PVPVP", seed=seed)


# ----------------------------------------------------------------------
# Section 5.2 — Figs. 15-16 (mild illumination)
# ----------------------------------------------------------------------

def experiment_fig15(seeds=(2, 3, 4, 5, 6),
                     runner: BatchRunner | None = None) -> ExperimentResult:
    """Fig. 15: RX-LED at h = 25 cm works at 450 lux, fails at 100 lux."""
    runner = runner or BatchRunner()
    specs = expand_grid(outdoor_tag_spec("00", 450.0, 0.25),
                        {"ground_lux": [450.0, 100.0],
                         "seed": list(seeds)})
    rates = success_rate_by(runner.run(specs).records, "ground_lux")
    rate_450, rate_100 = rates[450.0], rates[100.0]
    passed = rate_450 >= 0.6 and rate_100 <= 0.2
    return ExperimentResult(
        experiment_id="fig15",
        title="RX-LED under mild illumination (car tag, 18 km/h, "
              "h = 25 cm, code HLHL.HLHL)",
        paper_claim="Decodable at a 450 lux noise floor; not decodable at "
                    "100 lux (too little ambient light to modulate)",
        measured={
            "decode_rate_at_450lux": rate_450,
            "decode_rate_at_100lux": rate_100,
        },
        passed=passed,
    )


def experiment_fig16(seeds=(2, 3, 4, 5, 6),
                     runner: BatchRunner | None = None) -> ExperimentResult:
    """Fig. 16: PD(G2) at 100 lux fails bare, works with the FoV cap."""
    runner = runner or BatchRunner()
    template = outdoor_car_spec("00", 100.0, 0.25).replace(
        detector="pd", pd_gain="G2")
    specs = expand_grid(template, {"cap": [False, True],
                                   "seed": list(seeds)})
    rates = success_rate_by(runner.run(specs).records, "cap")
    rate_nocap, rate_cap = rates[False], rates[True]
    passed = rate_nocap <= 0.2 and rate_cap >= 0.6
    return ExperimentResult(
        experiment_id="fig16",
        title="PD (G2) at a 100 lux noise floor, with and without the "
              "1.2x1.2x2.8 cm FoV cap (tagged car, h = 25 cm)",
        paper_claim="Without the cap the car's metal roof interferes and "
                    "the code is not decodable; narrowing the FoV with the "
                    "cap filters the interference and decoding succeeds "
                    "despite the RSS drop",
        measured={
            "decode_rate_without_cap": rate_nocap,
            "decode_rate_with_cap": rate_cap,
        },
        passed=passed,
    )


# ----------------------------------------------------------------------
# Section 5.3 — Fig. 17 (well illuminated)
# ----------------------------------------------------------------------

def experiment_fig17(seeds=(2, 3, 4, 5, 6),
                     runner: BatchRunner | None = None) -> ExperimentResult:
    """Fig. 17: RX-LED outdoors — three decodable configurations."""
    runner = runner or BatchRunner()
    configs = {
        "a_6200lux_h75cm_code00": (6200.0, 0.75, "00"),
        "b_3700lux_h100cm_code00": (3700.0, 1.00, "00"),
        "c_5500lux_h100cm_code10": (5500.0, 1.00, "10"),
    }
    # One flat batch across all configurations and seeds: the engine
    # runs (and caches) the 15 passes together instead of 15 serial
    # simulator builds.
    specs = [outdoor_car_spec(bits, lux, height).replace(seed=seed)
             for (lux, height, bits) in configs.values()
             for seed in seeds]
    records = runner.run(specs).records
    measured: dict[str, Any] = {}
    rates: dict[str, float] = {}
    for k, label in enumerate(configs):
        batch = records[k * len(seeds):(k + 1) * len(seeds)]
        rates[label] = sum(r.success for r in batch) / len(seeds)
        measured[f"decode_rate_{label}"] = rates[label]
    symbol_rate = CAR_SPEED_MPS / CAR_SYMBOL_WIDTH_M
    measured["throughput_sps"] = symbol_rate
    passed = (all(r >= 0.6 for r in rates.values())
              and abs(symbol_rate - 50.0) < 1e-9)
    return ExperimentResult(
        experiment_id="fig17",
        title="RX-LED outdoors, car at 18 km/h (well-illuminated)",
        paper_claim="All three configurations decodable (6200 lux / 75 cm; "
                    "3700 lux / 100 cm; 5500 lux / 100 cm with code "
                    "HLHL.LHHL); achieved throughput ~50 symbols/s",
        measured=measured,
        passed=passed,
    )
