"""Detection fusion: combining reports from networked receivers.

A single receiver occasionally misreads a pass (noise, saturation,
marginal blur).  When several receivers along a track observe the same
object, a confidence-weighted vote across their payload reports recovers
the code even when individual nodes fail — the performance improvement
Section 6 anticipates from networking the receivers.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from .node import Detection

__all__ = ["FusedObservation", "fuse_detections", "group_by_pass"]


#: Floor applied to every decoded report's confidence when it votes, so
#: a zero-confidence payload still counts.  ``agreement`` weighs the
#: total decoded mass with the *same* floor — support and total must be
#: computed in one currency or the ratio escapes [0, 1].
VOTE_FLOOR = 1e-6


def _vote_weight(confidence: float) -> float:
    return max(confidence, VOTE_FLOOR)


@dataclass
class FusedObservation:
    """The network's combined verdict about one pass.

    Attributes:
        bits: the winning payload ('' when nothing decodable was seen).
        support: summed confidence behind the winner.
        n_reports: number of node reports considered.
        n_decoded: how many reports carried a payload.
        detections: the underlying reports.
        agreement: winner support / total decoded support, in [0, 1].
    """

    bits: str
    support: float
    n_reports: int
    n_decoded: int
    detections: list[Detection] = field(default_factory=list)

    @property
    def agreement(self) -> float:
        """Fraction of decoded confidence mass behind the winner.

        Uses the same floored weighting as the vote itself, so the
        ratio is provably in [0, 1]: a unanimous group reports 1.0
        even when every report carries zero confidence, and the winner
        can never hold more mass than the total.
        """
        if not self.bits or self.support <= 0.0:
            return 0.0
        total = sum(_vote_weight(d.confidence)
                    for d in self.detections if d.decoded)
        if total <= 0.0:
            return 0.0
        return min(1.0, self.support / total)


def fuse_detections(detections: list[Detection],
                    allow_empty: bool = False) -> FusedObservation:
    """Confidence-weighted majority vote over payload reports.

    Undecoded reports (empty bits) count towards ``n_reports`` but do
    not vote.  Ties break towards the payload seen by the earlier
    (upstream) node, which has had the cleanest view of the preamble.

    Args:
        detections: the pass reports to fuse.
        allow_empty: degrade gracefully when every node dropped out —
            an empty list fuses to an empty, zero-support observation
            instead of raising.  Off by default: for healthy callers a
            zero-detection fuse is a logic error worth surfacing.

    Raises:
        ValueError: on an empty detection list (unless ``allow_empty``).
    """
    if not detections:
        if allow_empty:
            return FusedObservation(bits="", support=0.0, n_reports=0,
                                    n_decoded=0, detections=[])
        raise ValueError("cannot fuse zero detections")
    votes: dict[str, float] = defaultdict(float)
    first_seen: dict[str, float] = {}
    for det in detections:
        if not det.decoded:
            continue
        votes[det.bits] += _vote_weight(det.confidence)
        first_seen.setdefault(det.bits, det.timestamp_s)
    if not votes:
        return FusedObservation(bits="", support=0.0,
                                n_reports=len(detections), n_decoded=0,
                                detections=list(detections))
    winner = min(votes, key=lambda b: (-votes[b], first_seen[b]))
    return FusedObservation(
        bits=winner,
        support=votes[winner],
        n_reports=len(detections),
        n_decoded=sum(1 for d in detections if d.decoded),
        detections=list(detections),
    )


def group_by_pass(detections: list[Detection],
                  expected_speed_mps: float,
                  tolerance_s: float = 1.0) -> list[list[Detection]]:
    """Cluster detections from different nodes into per-pass groups.

    Two detections belong to the same pass when their timestamp gap is
    consistent with the object travelling between the two node positions
    at roughly the expected speed.

    Args:
        detections: all reports, any order.
        expected_speed_mps: nominal object speed.
        tolerance_s: allowed deviation from the predicted arrival time.
    """
    if expected_speed_mps <= 0.0:
        raise ValueError("expected speed must be positive")
    if tolerance_s <= 0.0:
        raise ValueError("tolerance must be positive")
    ordered = sorted(detections, key=lambda d: d.timestamp_s)
    groups: list[list[Detection]] = []
    for det in ordered:
        placed = False
        for group in groups:
            ref = group[0]
            expected_dt = (det.position_m - ref.position_m) / expected_speed_mps
            if abs((det.timestamp_s - ref.timestamp_s) - expected_dt) <= tolerance_s:
                group.append(det)
                placed = True
                break
        if not placed:
            groups.append([det])
    return groups
