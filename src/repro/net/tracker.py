"""Multi-receiver object tracking.

With detections from receivers at known positions, the network can
estimate each object's speed and heading and predict where it will be —
the "information about the tracked objects" that Section 6 proposes to
share.  A :class:`networkx` graph models which receivers can exchange
reports (low-end receivers have limited connectivity), and tracking is
restricted to reports reachable from the querying node.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from .fusion import FusedObservation, fuse_detections, group_by_pass
from .node import Detection, ReceiverNode

__all__ = ["TrackEstimate", "estimate_track", "ReceiverNetwork"]


@dataclass(frozen=True)
class TrackEstimate:
    """Kinematic estimate for one tracked pass.

    Attributes:
        bits: fused payload.
        speed_mps: least-squares speed over (position, time) pairs.
        intercept_time_s: time the object passed position 0.
        residual_rms_s: fit quality (RMS timing residual).
        n_nodes: how many receivers contributed.
    """

    bits: str
    speed_mps: float
    intercept_time_s: float
    residual_rms_s: float
    n_nodes: int

    def predicted_arrival_s(self, position_m: float) -> float:
        """Predicted passing time at a downstream position."""
        if self.speed_mps <= 0.0:
            raise ValueError("cannot predict with a non-positive speed")
        return self.intercept_time_s + position_m / self.speed_mps


def estimate_track(detections: list[Detection]) -> TrackEstimate:
    """Fit speed and timing from multi-node detections of one pass.

    Least squares on ``t_i = t0 + x_i / v`` using every report with a
    timestamp (decoded or not — even an undecoded node saw *something*
    pass).

    Raises:
        ValueError: with fewer than two distinct positions.
    """
    if len(detections) < 2:
        raise ValueError("need at least two detections to estimate a track")
    xs = np.array([d.position_m for d in detections])
    ts = np.array([d.timestamp_s for d in detections])
    if len(np.unique(xs)) < 2:
        raise ValueError("detections must come from distinct positions")
    # t = t0 + x / v  ->  linear fit of t against x.
    slope, intercept = np.polyfit(xs, ts, deg=1)
    if slope <= 0.0:
        raise ValueError(
            f"non-positive time-vs-position slope ({slope:.4g}); object "
            "does not move forward through the receivers")
    predicted = intercept + slope * xs
    residual = float(np.sqrt(np.mean((ts - predicted) ** 2)))
    fused = fuse_detections(detections)
    return TrackEstimate(
        bits=fused.bits,
        speed_mps=1.0 / slope,
        intercept_time_s=float(intercept),
        residual_rms_s=residual,
        n_nodes=len(detections),
    )


class ReceiverNetwork:
    """A set of receiver nodes with a communication topology.

    Attributes:
        graph: undirected connectivity graph; nodes are node ids.
    """

    def __init__(self) -> None:
        self.graph = nx.Graph()
        self._nodes: dict[str, ReceiverNode] = {}
        self._detections: list[Detection] = []

    def add_node(self, node: ReceiverNode) -> None:
        """Register a receiver node.

        Raises:
            ValueError: on duplicate node ids.
        """
        if node.node_id in self._nodes:
            raise ValueError(f"duplicate node id {node.node_id!r}")
        self._nodes[node.node_id] = node
        self.graph.add_node(node.node_id, position_m=node.position_m)

    def connect(self, a: str, b: str) -> None:
        """Create a communication link between two registered nodes."""
        for node_id in (a, b):
            if node_id not in self._nodes:
                raise KeyError(f"unknown node {node_id!r}")
        self.graph.add_edge(a, b)

    def node(self, node_id: str) -> ReceiverNode:
        """Look up a registered node."""
        return self._nodes[node_id]

    @property
    def nodes(self) -> list[ReceiverNode]:
        """All registered nodes, ordered by track position."""
        return sorted(self._nodes.values(), key=lambda n: n.position_m)

    def record(self, detection: Detection) -> None:
        """Store a node's detection in the shared report pool."""
        if detection.node_id not in self._nodes:
            raise KeyError(f"unknown node {detection.node_id!r}")
        self._detections.append(detection)

    def reachable_detections(self, from_node: str) -> list[Detection]:
        """Reports visible to a node: its own plus connected components'."""
        if from_node not in self._nodes:
            raise KeyError(f"unknown node {from_node!r}")
        reachable = nx.node_connected_component(self.graph, from_node)
        return [d for d in self._detections if d.node_id in reachable]

    def fuse_at(self, node_id: str,
                expected_speed_mps: float) -> list[FusedObservation]:
        """Per-pass fused verdicts computed from one node's viewpoint."""
        reports = self.reachable_detections(node_id)
        if not reports:
            return []
        groups = group_by_pass(reports, expected_speed_mps)
        return [fuse_detections(g) for g in groups]

    def track_at(self, node_id: str,
                 expected_speed_mps: float) -> list[TrackEstimate]:
        """Per-pass kinematic estimates from one node's viewpoint.

        Passes seen by fewer than two distinct reachable positions are
        skipped, as are unfittable groups (a garbled or mis-grouped
        pass whose reports imply a non-positive time-vs-position slope)
        — one bad group must not kill the whole query.
        """
        reports = self.reachable_detections(node_id)
        groups = group_by_pass(reports, expected_speed_mps)
        estimates: list[TrackEstimate] = []
        for group in groups:
            if len({d.position_m for d in group}) < 2:
                continue
            try:
                estimates.append(estimate_track(group))
            except ValueError:
                continue
        return estimates
