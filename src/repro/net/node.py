"""Receiver nodes: one deployed 'tiny box' plus its local detections.

Section 6 (5): "If the receivers in our system are networked, then they
can share the information about the tracked objects and thus could
improve the system's performance."

A :class:`ReceiverNode` owns a location along a track, a receiver front
end and a decoder; it turns passes into timestamped
:class:`Detection` records that the fusion layer combines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..channel.trace import SignalTrace
from ..core.decoder import AdaptiveThresholdDecoder, DecodeResult
from ..core.errors import DecodeError, PreambleNotFoundError
from ..hardware.frontend import ReceiverFrontEnd

__all__ = ["Detection", "ReceiverNode", "decode_confidence",
           "onset_timestamp"]


def decode_confidence(result: DecodeResult) -> float:
    """Fold one decode's quality signals into [0, 1].

    Preamble verification contributes half; the windows' decision
    margins (distance from threshold, relative to tau_r) the rest.
    Shared by deployed receiver nodes and streaming sessions so both
    report the same confidence currency to the fusion layer.
    """
    base = 0.5 if result.preamble_verified else 0.1
    if not result.windows or result.tau_r <= 0.0:
        return base
    margins = [abs(w.max_value - result.threshold_level) / result.tau_r
               for w in result.windows]
    margin_term = float(np.clip(np.mean(margins), 0.0, 1.0))
    return float(np.clip(base + 0.5 * margin_term, 0.0, 1.0))


def onset_timestamp(trace: SignalTrace) -> float:
    """Estimate when a pass's signal starts in a raw trace.

    The decoder anchors decoded reports on the *preamble start*; a
    failed decode used to be stamped with ``trace.start_time_s`` (the
    capture-window start), which sits a margin earlier and biases any
    track fit mixing decoded and undecoded reports.  This estimates the
    comparable quantity — the first sustained departure from the
    leading quiet baseline — directly from the samples.

    Falls back to the strongest deviation (flat-ish traces), then to
    the window start (degenerate traces).
    """
    x = np.asarray(trace.samples, dtype=float)
    if len(x) < 8:
        return trace.start_time_s
    n_base = max(4, len(x) // 10)
    baseline = float(np.median(x[:n_base]))
    deviation = np.abs(x - baseline)
    # Noise scale of the quiet lead-in; the onset threshold must clear
    # it and be a meaningful fraction of the trace's overall swing.
    noise = float(np.median(deviation[:n_base]))
    peak = float(deviation.max())
    if peak <= 0.0:
        return trace.start_time_s
    threshold = max(6.0 * noise, 0.2 * peak)
    above = np.nonzero(deviation >= threshold)[0]
    index = int(above[0]) if len(above) else int(np.argmax(deviation))
    return trace.start_time_s + index / trace.sample_rate_hz


@dataclass(frozen=True)
class Detection:
    """One node's report of one pass.

    Attributes:
        node_id: reporting node.
        position_m: node position along the track.
        timestamp_s: arrival time of the pass (node-local clock; nodes
            are assumed NTP-ish synchronised to ~ms).  Decoded reports
            anchor on the preamble start; undecoded reports estimate
            the signal onset from the raw trace so the two kinds stay
            comparable in one track fit (see ``timestamp_source``).
        bits: decoded payload ('' when the node could not decode).
        confidence: decode quality in [0, 1] — preamble verification and
            threshold margin folded into one number.
        symbol_period_s: the node's tau_t estimate (used for speed
            estimation downstream).
        timestamp_source: provenance of ``timestamp_s`` —
            ``"preamble_anchor"`` (decoded) or ``"onset_estimate"``
            (undecoded fallback).
    """

    node_id: str
    position_m: float
    timestamp_s: float
    bits: str
    confidence: float
    symbol_period_s: float = 0.0
    timestamp_source: str = "preamble_anchor"

    @property
    def decoded(self) -> bool:
        """Whether the node produced a payload."""
        return self.bits != ""


@dataclass
class ReceiverNode:
    """A deployed receiver at a fixed position along a track.

    Attributes:
        node_id: unique identifier.
        position_m: location along the track (m).
        frontend: the node's receiver chain.
        decoder: decoding algorithm — anything with the
            ``decode(trace, n_data_symbols=...) -> DecodeResult``
            interface; pass a :class:`repro.vehicles.TwoPhaseDecoder`
            for nodes watching tagged cars.
    """

    node_id: str
    position_m: float
    frontend: ReceiverFrontEnd
    decoder: object = field(default_factory=AdaptiveThresholdDecoder)

    def __post_init__(self) -> None:
        if not self.node_id:
            raise ValueError("node_id must be non-empty")

    def _confidence(self, result: DecodeResult) -> float:
        """See :func:`decode_confidence` (kept as a method for callers
        that override per-node confidence policies)."""
        return decode_confidence(result)

    def observe(self, trace: SignalTrace,
                n_data_symbols: int | None = None) -> Detection:
        """Process one captured pass into a detection record."""
        try:
            result = self.decoder.decode(trace, n_data_symbols=n_data_symbols)
        except (PreambleNotFoundError, DecodeError):
            return Detection(node_id=self.node_id,
                             position_m=self.position_m,
                             timestamp_s=onset_timestamp(trace),
                             bits="", confidence=0.0,
                             timestamp_source="onset_estimate")
        anchor = result.anchor_points[0]
        return Detection(
            node_id=self.node_id,
            position_m=self.position_m,
            timestamp_s=anchor.time_s,
            bits=result.bit_string(),
            confidence=self._confidence(result) if result.success else 0.0,
            symbol_period_s=result.tau_t,
            timestamp_source="preamble_anchor",
        )
