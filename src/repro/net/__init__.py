"""Networked receivers (Section 6 future work): nodes, fusion, tracking."""

from .fusion import FusedObservation, fuse_detections, group_by_pass
from .node import Detection, ReceiverNode
from .tracker import ReceiverNetwork, TrackEstimate, estimate_track

__all__ = [
    "FusedObservation", "fuse_detections", "group_by_pass",
    "Detection", "ReceiverNode",
    "ReceiverNetwork", "TrackEstimate", "estimate_track",
]
