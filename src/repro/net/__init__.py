"""Networked receivers (Section 6 future work): nodes, fusion, tracking."""

from .fusion import FusedObservation, fuse_detections, group_by_pass
from .node import Detection, ReceiverNode, decode_confidence, onset_timestamp
from .tracker import ReceiverNetwork, TrackEstimate, estimate_track

__all__ = [
    "FusedObservation", "fuse_detections", "group_by_pass",
    "Detection", "ReceiverNode", "decode_confidence", "onset_timestamp",
    "ReceiverNetwork", "TrackEstimate", "estimate_track",
]
