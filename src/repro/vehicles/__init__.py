"""Vehicles: car optical signatures and roof-tag decoding (Section 5)."""

from .profiles import (
    CAR_LIBRARY,
    CarProfile,
    CarSegment,
    bmw_3_series,
    car_by_name,
    volvo_v40,
)
from .rooftag import TaggedCar, TwoPhaseDecoder, tagged_car_surface
from .signature import (
    CarSignature,
    LongPreambleDetector,
    SignatureFeature,
    extract_signature,
    match_car,
)

__all__ = [
    "CAR_LIBRARY", "CarProfile", "CarSegment", "bmw_3_series",
    "car_by_name", "volvo_v40",
    "TaggedCar", "TwoPhaseDecoder", "tagged_car_surface",
    "CarSignature", "LongPreambleDetector", "SignatureFeature",
    "extract_signature", "match_car",
]
