"""Car roof-line reflectance profiles (Section 5.1).

"The top part of the cars have two different materials, metal and
glass, with different lengths and shapes.  Thus, their optical
signatures should be unique."  Figs. 13-14 show the signatures: metal
panels — hood (A), roof (C), trunk (E) — reflect much more light
(peaks) than the front and rear windshields (B, D) which read as
valleys from above.

A :class:`CarProfile` is a piecewise-material linear surface
implementing the same protocol as tag surfaces, so cars sweep through
the channel simulator unchanged.  The segment lengths below are
top-view projections measured off the two test vehicles' silhouettes:

* **Volvo V40** — a hatchback: hood, windshield, long roof, steep rear
  window, no separate trunk deck (the signature of Fig. 13 ends after
  the rear-window valley D).
* **BMW 3 series** — a sedan: adds the trunk deck peak E of Fig. 14.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..optics.materials import CAR_GLASS, CAR_PAINT_METAL, Material
from ..optics.reflection import (
    OVERHEAD_GEOMETRY,
    IlluminationGeometry,
    effective_reflectance,
)

__all__ = ["CarSegment", "CarProfile", "volvo_v40", "bmw_3_series",
           "CAR_LIBRARY", "car_by_name"]


@dataclass(frozen=True)
class CarSegment:
    """One top-view segment of a car's roof line.

    Attributes:
        name: segment label ("hood", "windshield", ...).
        material: surface material seen from above.
        length_m: extent along the car's axis.
    """

    name: str
    material: Material
    length_m: float

    def __post_init__(self) -> None:
        if self.length_m <= 0.0:
            raise ValueError(f"segment length must be positive, got {self.length_m}")


@dataclass
class CarProfile:
    """A car as a linear reflectance profile.

    Attributes:
        model: vehicle model name.
        segments: roof-line segments, front to back (the front arrives
            under the receiver first).
    """

    model: str
    segments: list[CarSegment]

    def __post_init__(self) -> None:
        if not self.segments:
            raise ValueError("a car profile needs at least one segment")
        lengths = np.array([s.length_m for s in self.segments])
        self._edges = np.concatenate(([0.0], np.cumsum(lengths)))

    @property
    def length_m(self) -> float:
        """Overall car length (top view)."""
        return float(self._edges[-1])

    @property
    def min_feature_m(self) -> float:
        """Shortest segment — sets the simulator's resolution needs."""
        return min(s.length_m for s in self.segments)

    def segment_at(self, x_local: float) -> CarSegment | None:
        """Segment at a local position (None outside the car)."""
        if x_local < 0.0 or x_local > self.length_m:
            return None
        idx = int(np.searchsorted(self._edges, x_local, side="right")) - 1
        idx = min(max(idx, 0), len(self.segments) - 1)
        return self.segments[idx]

    def segment_span(self, name: str) -> tuple[float, float]:
        """Local [start, end) span of a named segment.

        Raises:
            KeyError: if the car has no segment with that name.
        """
        for i, seg in enumerate(self.segments):
            if seg.name == name:
                return float(self._edges[i]), float(self._edges[i + 1])
        raise KeyError(f"{self.model} has no segment named {name!r}")

    def reflectance_samples(self, xs_local: np.ndarray,
                            geometry: IlluminationGeometry = OVERHEAD_GEOMETRY,
                            ) -> np.ndarray:
        """Effective-reflectance profile along the roof line."""
        xs = np.asarray(xs_local, dtype=float)
        values = {s.material.name: effective_reflectance(s.material, geometry)
                  for s in self.segments}
        idx = np.searchsorted(self._edges, xs, side="right") - 1
        idx = np.clip(idx, 0, len(self.segments) - 1)
        per_seg = np.array([values[s.material.name] for s in self.segments])
        out = per_seg[idx]
        outside = (xs < 0.0) | (xs > self.length_m)
        return np.where(outside, 0.0, out)

    def metal_segments(self) -> list[str]:
        """Names of the strongly reflecting (metal) segments."""
        return [s.name for s in self.segments
                if s.material.name == CAR_PAINT_METAL.name]

    def glass_segments(self) -> list[str]:
        """Names of the weakly reflecting (glass) segments."""
        return [s.name for s in self.segments
                if s.material.name == CAR_GLASS.name]


def volvo_v40() -> CarProfile:
    """The Volvo V40 hatchback of Fig. 13: hood A, windshield B, roof C,
    rear window D, plus the short tailgate lip that gives Fig. 13's
    waveform its small rise at the very tail.  The lip is much shorter
    than a sedan's trunk deck — segment timing is what separates the V40
    from the BMW, not the feature count."""
    return CarProfile(
        model="Volvo V40",
        segments=[
            CarSegment("hood", CAR_PAINT_METAL, 0.95),
            CarSegment("windshield", CAR_GLASS, 0.75),
            CarSegment("roof", CAR_PAINT_METAL, 1.45),
            CarSegment("rear_window", CAR_GLASS, 0.90),
            CarSegment("tailgate_lip", CAR_PAINT_METAL, 0.25),
        ],
    )


def bmw_3_series() -> CarProfile:
    """The BMW 3-series sedan of Fig. 14 (adds the trunk deck peak E)."""
    return CarProfile(
        model="BMW 3 series",
        segments=[
            CarSegment("hood", CAR_PAINT_METAL, 1.10),
            CarSegment("windshield", CAR_GLASS, 0.70),
            CarSegment("roof", CAR_PAINT_METAL, 1.15),
            CarSegment("rear_window", CAR_GLASS, 0.65),
            CarSegment("trunk", CAR_PAINT_METAL, 1.05),
        ],
    )


CAR_LIBRARY = {
    "volvo_v40": volvo_v40,
    "bmw_3_series": bmw_3_series,
}


def car_by_name(name: str) -> CarProfile:
    """Build a library car by key.

    Raises:
        KeyError: with the list of known models.
    """
    try:
        return CAR_LIBRARY[name]()
    except KeyError:
        known = ", ".join(sorted(CAR_LIBRARY))
        raise KeyError(f"unknown car {name!r}; known: {known}") from None
