"""Car optical signatures and the long-duration preamble (Section 5).

Section 5.1 uses the bare car as a baseline: its metal/glass alternation
produces a unique peak/valley waveform (Figs. 13-14).  Section 5.2 then
exploits it: "The ability to detect the shape of the car with the RX-LED
allows us to use the car's optical signature as a long-duration-preamble
of the packet, indicating when the receiver needs to get ready to decode
information" — concretely, "detecting the hood 'peak' and windshield
'valley'" before running the Section 4.1 decoder on the roof region.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..channel.trace import SignalTrace
from ..dsp.filters import moving_average
from ..dsp.peaks import Extremum, find_peaks_and_valleys
from .profiles import CarProfile

__all__ = ["SignatureFeature", "CarSignature", "extract_signature",
           "LongPreambleDetector", "match_car"]


@dataclass(frozen=True)
class SignatureFeature:
    """One landmark of a car signature.

    Attributes:
        label: feature tag ('hood', 'windshield', ...), assigned when
            matched against a car profile; detection order otherwise.
        kind: 'peak' (metal) or 'valley' (glass).
        time_s: feature timestamp.
        value: RSS level at the feature.
        width_s: duration of the feature's plateau (time between the
            mid-level crossings around the extremum); 0 when it could
            not be measured.  Feature widths are proportional to segment
            lengths at constant speed, which is what tells a sedan's
            long trunk deck from a hatchback's short tailgate lip.
    """

    label: str
    kind: str
    time_s: float
    value: float
    width_s: float = 0.0


@dataclass
class CarSignature:
    """A car's captured optical signature.

    Attributes:
        features: alternating peak/valley landmarks in time order.
        trace: the capture the signature was extracted from.
    """

    features: list[SignatureFeature]
    trace: SignalTrace

    @property
    def pattern(self) -> str:
        """Compact pattern string, e.g. ``"PVPVP"`` for a sedan."""
        return "".join("P" if f.kind == "peak" else "V"
                       for f in self.features)

    def n_peaks(self) -> int:
        """Number of metal-panel peaks."""
        return sum(1 for f in self.features if f.kind == "peak")

    def n_valleys(self) -> int:
        """Number of glass valleys."""
        return sum(1 for f in self.features if f.kind == "valley")


def extract_signature(trace: SignalTrace,
                      min_prominence_fraction: float = 0.25,
                      smoothing_fraction: float = 0.02) -> CarSignature:
    """Extract the alternating peak/valley landmark sequence of a pass.

    Args:
        trace: RSS capture of a car pass.
        min_prominence_fraction: prominence threshold relative to the
            trace's span.
        smoothing_fraction: moving-average width as a fraction of the
            trace length (car features are long; heavy smoothing is
            safe and kills tag modulation riding on the roof).

    Returns:
        The signature with features in time order, de-duplicated so
        peaks and valleys strictly alternate (strongest survives).
    """
    if not 0.0 < min_prominence_fraction < 1.0:
        raise ValueError("prominence fraction must be in (0, 1)")
    smooth = moving_average(trace.samples,
                            max(3, int(len(trace.samples) * smoothing_fraction)))
    span = float(smooth.max() - smooth.min())
    if span == 0.0:
        return CarSignature(features=[], trace=trace)
    extrema = find_peaks_and_valleys(
        smooth, trace.sample_rate_hz, trace.start_time_s,
        min_prominence=min_prominence_fraction * span)

    # Enforce strict alternation: within a run of same-kind extrema keep
    # the most extreme one.
    filtered: list[Extremum] = []
    for ext in extrema:
        if filtered and filtered[-1].kind == ext.kind:
            keep_new = (ext.value > filtered[-1].value
                        if ext.kind == "peak"
                        else ext.value < filtered[-1].value)
            if keep_new:
                filtered[-1] = ext
        else:
            filtered.append(ext)

    # Measure each feature's plateau width at the mid level between the
    # typical peak and valley values.
    if filtered:
        peak_vals = [e.value for e in filtered if e.kind == "peak"]
        valley_vals = [e.value for e in filtered if e.kind == "valley"]
        if peak_vals and valley_vals:
            mid = (float(np.median(peak_vals))
                   + float(np.median(valley_vals))) / 2.0
        else:
            mid = float(np.median(smooth))
    widths: list[float] = []
    for ext in filtered:
        above = smooth > mid if ext.kind == "peak" else smooth < mid
        left = ext.index
        while left > 0 and above[left - 1]:
            left -= 1
        right = ext.index
        while right < len(smooth) - 1 and above[right + 1]:
            right += 1
        widths.append((right - left + 1) / trace.sample_rate_hz)

    features = [SignatureFeature(label=f"f{i}", kind=e.kind,
                                 time_s=e.time_s, value=e.value,
                                 width_s=w)
                for i, (e, w) in enumerate(zip(filtered, widths))]
    return CarSignature(features=features, trace=trace)


def _expected_pattern(car: CarProfile) -> str:
    return "".join("P" if seg.material.name == "car_paint_metal" else "V"
                   for seg in car.segments)


def _normalized_positions(values: list[float]) -> np.ndarray | None:
    """Map a monotone value list onto [0, 1] (None if degenerate)."""
    arr = np.asarray(values, dtype=float)
    span = arr[-1] - arr[0]
    if span <= 0.0:
        return None
    return (arr - arr[0]) / span


def match_car(signature: CarSignature,
              candidates: list[CarProfile],
              max_width_rms: float = 0.08) -> CarProfile | None:
    """Identify the car whose signature best fits the capture.

    Matching is two-stage, mirroring how the paper distinguishes the two
    test cars: first the metal/glass alternation pattern must agree
    (metal -> P, glass -> V), then the *relative widths* of the features
    — at constant speed, a feature's plateau duration is proportional to
    its segment's length, so a sedan's long trunk deck (a wide final
    peak) is cleanly separated from a hatchback's short tailgate lip.
    Feature widths are used instead of peak times because the maximum of
    a flat plateau lands wherever the noise puts it.

    Args:
        signature: the extracted landmark sequence.
        candidates: car profiles to match against.
        max_width_rms: reject matches whose normalised feature-width
            RMS error exceeds this.

    Returns:
        The best-fitting candidate, or None when nothing fits.
    """
    if len(signature.features) < 2:
        return None
    observed = signature.pattern
    obs_widths = np.array([f.width_s for f in signature.features])
    total = float(obs_widths.sum())
    if total <= 0.0:
        return None
    obs_fracs = obs_widths / total
    best: tuple[float, CarProfile] | None = None
    for car in candidates:
        if observed != _expected_pattern(car):
            continue
        lengths = np.array([seg.length_m for seg in car.segments])
        expected_fracs = lengths / lengths.sum()
        if len(expected_fracs) != len(obs_fracs):
            continue
        rms = float(np.sqrt(np.mean((obs_fracs - expected_fracs) ** 2)))
        if rms <= max_width_rms and (best is None or rms < best[0]):
            best = (rms, car)
    return best[1] if best is not None else None


@dataclass
class LongPreambleDetector:
    """Detects the hood-peak -> windshield-valley long preamble.

    Attributes:
        min_prominence_fraction: prominence threshold for the two
            landmark features.
        roof_end_fraction: how much of the capture after the windshield
            valley is handed to the decoder (1.0 = to the end).
    """

    min_prominence_fraction: float = 0.25
    roof_end_fraction: float = 1.0

    def detect(self, trace: SignalTrace) -> tuple[float, float] | None:
        """Find the long preamble in a capture.

        Returns:
            ``(hood_peak_time, windshield_valley_time)`` of the first
            peak-then-valley pair, or None when absent.
        """
        signature = extract_signature(
            trace, min_prominence_fraction=self.min_prominence_fraction)
        hood: SignatureFeature | None = None
        for feature in signature.features:
            if feature.kind == "peak" and hood is None:
                hood = feature
            elif feature.kind == "valley" and hood is not None:
                return hood.time_s, feature.time_s
        return None

    def roof_window(self, trace: SignalTrace) -> SignalTrace | None:
        """Slice the capture from the end of the windshield valley on.

        The Section 4.1 decoder then runs on this sub-trace, whose first
        prominent peaks are the tag's own HLHL preamble.

        Returns:
            The roof-region sub-trace, or None when the long preamble
            was not found.
        """
        found = self.detect(trace)
        if found is None:
            return None
        hood_t, valley_t = found
        # The roof starts roughly one hood-to-windshield interval past
        # the valley centre... conservatively start at the valley itself:
        # the tag preamble's first peak is found by prominence anyway.
        t_end = trace.start_time_s + trace.duration_s
        if self.roof_end_fraction < 1.0:
            t_end = valley_t + self.roof_end_fraction * (t_end - valley_t)
        try:
            return trace.slice_time(valley_t, t_end)
        except ValueError:
            return None
