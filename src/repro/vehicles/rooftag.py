"""Cars carrying roof tags: the Section 5.2/5.3 configuration.

"We place a 'packet' on the roof of a car and attach the receiver to a
pole supporting structure."  The composite surface is the car profile
with the tag overriding the roof span; decoding is two-phase — long
preamble (car shape) first, then the Section 4.1 decoder on the roof
window.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..channel.trace import SignalTrace
from ..core.decoder import AdaptiveThresholdDecoder, DecodeResult
from ..core.errors import DecodeError, PreambleNotFoundError
from ..exec.graph import ExecStage, StageTrace, maybe_stage
from ..tags.packet import Packet
from ..tags.surface import CompositeSurface, TagSurface
from .profiles import CarProfile
from .signature import LongPreambleDetector

__all__ = ["TaggedCar", "tagged_car_surface", "TwoPhaseDecoder"]


def tagged_car_surface(car: CarProfile, packet: Packet,
                       roof_offset_m: float = 0.05) -> CompositeSurface:
    """A car with a packet tag mounted on its roof.

    Args:
        car: the vehicle profile.
        packet: the payload; its physical length must fit on the roof.
        roof_offset_m: gap between the roof's leading edge and the tag.

    Raises:
        ValueError: when the tag does not fit on the roof segment.
    """
    roof_start, roof_end = car.segment_span("roof")
    tag = TagSurface.from_packet(packet)
    tag_start = roof_start + roof_offset_m
    if tag_start + tag.length_m > roof_end:
        raise ValueError(
            f"tag of {tag.length_m:.2f} m does not fit on the "
            f"{roof_end - roof_start:.2f} m roof with offset {roof_offset_m} m")
    return CompositeSurface(
        parts=[(0.0, car), (tag_start, tag)],
        total_length_m=car.length_m,
    )


@dataclass
class TaggedCar:
    """A car + roof tag pairing, ready to drop into a scene.

    Attributes:
        car: the vehicle.
        packet: the payload on the roof.
        roof_offset_m: tag placement offset from the roof's front edge.
    """

    car: CarProfile
    packet: Packet
    roof_offset_m: float = 0.05

    def surface(self) -> CompositeSurface:
        """The composite car+tag reflectance profile."""
        return tagged_car_surface(self.car, self.packet, self.roof_offset_m)

    def tag_span_m(self) -> tuple[float, float]:
        """Local [start, end] of the tag on the car."""
        roof_start, _ = self.car.segment_span("roof")
        start = roof_start + self.roof_offset_m
        return start, start + self.packet.length_m


class TwoPhaseDecoder:
    """Long-duration preamble acquisition, then threshold decoding.

    Section 5.2: "We first look for the long-duration-preamble based on
    the car's shape (by detecting the hood 'peak' and windshield
    'valley') [then] perform the decoding algorithm in Sec. 4.1."

    Attributes:
        preamble_detector: the hood/windshield landmark detector.
        decoder: the Section 4.1 decoder applied to the roof window.
    """

    def __init__(self,
                 preamble_detector: LongPreambleDetector | None = None,
                 decoder: AdaptiveThresholdDecoder | None = None) -> None:
        self.preamble_detector = preamble_detector or LongPreambleDetector()
        self.decoder = decoder or AdaptiveThresholdDecoder()

    def decode(self, trace: SignalTrace,
               n_data_symbols: int | None = None,
               stage_trace: StageTrace | None = None) -> DecodeResult:
        """Decode a tagged-car pass.

        The phase-1 landmark search counts as the ``acquire`` stage
        when profiled; phase 2 attributes its own interior.

        Raises:
            PreambleNotFoundError: when the long preamble (car shape) is
                absent, or the tag preamble cannot be acquired in the
                roof window.
            DecodeError: when windowing fails inside the roof region.
        """
        with maybe_stage(stage_trace, ExecStage.ACQUIRE):
            roof = self.preamble_detector.roof_window(trace)
        if roof is None:
            raise PreambleNotFoundError(
                "long-duration preamble (hood peak + windshield valley) "
                "not found")
        return self.decoder.decode(roof, n_data_symbols=n_data_symbols,
                                   stage_trace=stage_trace)

    def try_decode(self, trace: SignalTrace,
                   n_data_symbols: int | None = None) -> DecodeResult | None:
        """Like :meth:`decode` but returns None on failure."""
        try:
            return self.decode(trace, n_data_symbols=n_data_symbols)
        except (PreambleNotFoundError, DecodeError):
            return None
