"""The declared stage graph every execution driver runs.

The paper's pipeline is one sequence of stages — build the optical
scene, simulate the capture, inject faults, normalize, acquire the
preamble, refine the symbol clock, decide bits, fuse receivers — but
the repo grew three divergent implementations of that sequencing
(serial, vectorized, streaming).  This module names the stages once
(:class:`ExecStage`), gives them a tiny execution protocol
(:class:`Stage`, :class:`StageGraph`) and a shared instrumentation
carrier (:class:`StageTrace`), so the drivers in
:mod:`repro.engine.executor`, :mod:`repro.tensor.batch` and
:mod:`repro.stream.decode` differ only in *how* they traverse the
graph — per scenario, per batch row, or per pushed chunk — never in
what the stages are.

Profiling is opt-in (:func:`set_profiling` /
``REPRO_EXEC_PROFILE=1``): when off, every hook degrades to a shared
no-op context manager so the hot paths pay a single ``None`` check.
Everything here is pure stdlib — any layer may import it without
cycles.
"""

from __future__ import annotations

import contextlib
import os
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Iterator, Protocol, Sequence, runtime_checkable

__all__ = [
    "ExecStage", "PIPELINE_STAGES", "PROFILE_ENV",
    "Stage", "FuncStage", "StageGraph", "StageTrace",
    "collect_traces", "maybe_stage", "new_trace", "profiled",
    "profiling_enabled", "set_profiling",
]

#: Environment switch for per-stage instrumentation.  Read at call
#: time (not import time) so CLI flags and worker processes that
#: inherit the environment agree without re-imports.
PROFILE_ENV = "REPRO_EXEC_PROFILE"

_FORCED: bool | None = None


class ExecStage(str, Enum):
    """The canonical pipeline stages, in execution order.

    A ``str`` subclass so stage names serialize and compare as the
    plain strings drivers always used (``"build"`` ... ``"fuse"``).
    """

    BUILD = "build"
    SIMULATE = "simulate"
    INJECT_FAULTS = "inject_faults"
    NORMALIZE = "normalize"
    ACQUIRE = "acquire"
    REFINE_CLOCK = "refine_clock"
    DECIDE = "decide"
    FUSE = "fuse"

    # str.__str__/__format__ keep f-strings and %-formatting on the
    # bare value ("build", not "ExecStage.BUILD") on Python < 3.12.
    __str__ = str.__str__
    __format__ = str.__format__


#: Execution order, as plain strings (report tables key on these).
PIPELINE_STAGES: tuple[str, ...] = tuple(s.value for s in ExecStage)

_STAGE_INDEX = {name: i for i, name in enumerate(PIPELINE_STAGES)}


def set_profiling(enabled: bool | None) -> None:
    """Force profiling on/off for this process (None = follow env)."""
    global _FORCED
    _FORCED = enabled


def profiling_enabled() -> bool:
    """Whether stage instrumentation is currently requested."""
    if _FORCED is not None:
        return _FORCED
    raw = os.environ.get(PROFILE_ENV, "")
    return raw.strip().lower() not in ("", "0", "false", "no", "off")


_COLLECTOR: "list[StageTrace] | None" = None


def new_trace() -> "StageTrace | None":
    """A fresh :class:`StageTrace` when profiling is on, else None.

    Inside a :func:`collect_traces` scope the trace is also appended
    to the active collector, so callers that drive opaque entry points
    (the perf suite timing a closure) can still aggregate stages.
    """
    if not profiling_enabled():
        return None
    trace = StageTrace()
    if _COLLECTOR is not None:
        _COLLECTOR.append(trace)
    return trace


@contextlib.contextmanager
def collect_traces() -> "Iterator[list[StageTrace]]":
    """Collect every trace :func:`new_trace` hands out in this scope.

    Single-process only — traces created in forked workers stay in
    their worker.  Scopes nest; each sees only its own traces.
    """
    global _COLLECTOR
    prev, bucket = _COLLECTOR, []
    _COLLECTOR = bucket
    try:
        yield bucket
    finally:
        _COLLECTOR = prev


@contextlib.contextmanager
def profiled(enabled: bool = True) -> Iterator[None]:
    """Scoped profiling override restoring prior state on exit.

    Sets both the in-process flag and ``REPRO_EXEC_PROFILE`` (so
    worker processes forked inside the scope inherit it), then
    restores both — safe for tests that drive the CLI in-process.
    """
    prev_forced = _FORCED
    prev_env = os.environ.get(PROFILE_ENV)
    set_profiling(enabled)
    os.environ[PROFILE_ENV] = "1" if enabled else "0"
    try:
        yield
    finally:
        set_profiling(prev_forced)
        if prev_env is None:
            os.environ.pop(PROFILE_ENV, None)
        else:
            os.environ[PROFILE_ENV] = prev_env


@dataclass
class StageTrace:
    """Per-stage wall time and counters accumulated during one run.

    Attributes:
        timings_s: stage name -> accumulated wall seconds.
        counters: free-form event counts (chunks pushed, batch rows,
            nodes observed, ...).
    """

    timings_s: dict[str, float] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)

    def add(self, stage: str, seconds: float) -> None:
        """Accumulate wall time against one stage."""
        name = str(stage)
        self.timings_s[name] = self.timings_s.get(name, 0.0) + seconds

    def count(self, name: str, n: int = 1) -> None:
        """Bump a named counter."""
        key = str(name)
        self.counters[key] = self.counters.get(key, 0) + n

    @contextlib.contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a ``with`` block against one stage."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - started)

    def merge(self, other: "StageTrace | None") -> "StageTrace":
        """Fold another trace's timings and counters into this one."""
        if other is not None:
            for name, seconds in other.timings_s.items():
                self.add(name, seconds)
            for name, n in other.counters.items():
                self.count(name, n)
        return self

    def scaled(self, factor: float) -> "StageTrace":
        """A copy with timings scaled (counters kept verbatim).

        The tensor driver times whole-batch stages once, then
        attributes ``1/n`` of each stage to every record in the group.
        """
        return StageTrace(
            timings_s={k: v * factor for k, v in self.timings_s.items()},
            counters=dict(self.counters))

    @property
    def total_s(self) -> float:
        return sum(self.timings_s.values())

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe payload (stable stage ordering)."""
        def order(name: str) -> tuple[int, str]:
            return (_STAGE_INDEX.get(name, len(_STAGE_INDEX)), name)

        payload: dict[str, Any] = {
            "timings_s": {k: self.timings_s[k]
                          for k in sorted(self.timings_s, key=order)},
        }
        if self.counters:
            payload["counters"] = {k: self.counters[k]
                                   for k in sorted(self.counters)}
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> "StageTrace":
        return cls(
            timings_s={str(k): float(v)
                       for k, v in data.get("timings_s", {}).items()},
            counters={str(k): int(v)
                      for k, v in data.get("counters", {}).items()})


_NULL_CONTEXT = contextlib.nullcontext()


def maybe_stage(trace: StageTrace | None, name: str):
    """``trace.stage(name)`` when profiling, else a shared no-op.

    The single instrumentation hook hot loops call: one ``None``
    check when profiling is off.
    """
    return _NULL_CONTEXT if trace is None else trace.stage(name)


@runtime_checkable
class Stage(Protocol):
    """One node of the execution graph.

    Attributes:
        name: which :class:`ExecStage` this node implements.
        timed: whether :meth:`StageGraph.run` should wrap the call in
            stage timing (False for stages that instrument their own
            interior, e.g. a decode that splits acquire/refine/decide).
    """

    name: str
    timed: bool

    def should_run(self, ctx: Any) -> bool:
        """Whether this node applies to the given run context."""
        ...

    def __call__(self, ctx: Any) -> None:
        """Execute against the mutable run context."""
        ...


@dataclass(frozen=True)
class FuncStage:
    """A :class:`Stage` wrapping a plain function.

    Attributes:
        name: the :class:`ExecStage` it implements.
        fn: ``fn(ctx)`` mutating the run context.
        when: optional ``when(ctx) -> bool`` gate (default: always).
        timed: see :class:`Stage`.
    """

    name: str
    fn: Callable[[Any], None]
    when: Callable[[Any], bool] | None = None
    timed: bool = True

    def __post_init__(self) -> None:
        if str(self.name) not in _STAGE_INDEX:
            raise ValueError(
                f"unknown stage {self.name!r}; expected one of "
                f"{PIPELINE_STAGES}")

    def should_run(self, ctx: Any) -> bool:
        return self.when is None or bool(self.when(ctx))

    def __call__(self, ctx: Any) -> None:
        self.fn(ctx)


class StageGraph:
    """An ordered, validated sequence of :class:`Stage` nodes.

    Stage names must be drawn from :class:`ExecStage` and appear in
    non-decreasing pipeline order; multiple nodes may implement the
    same stage (e.g. mutually exclusive ``decide`` variants gated by
    ``when``).
    """

    def __init__(self, stages: Sequence[Stage], name: str = "") -> None:
        self.name = name
        self.stages = tuple(stages)
        last = -1
        for stage in self.stages:
            label = str(stage.name)
            index = _STAGE_INDEX.get(label)
            if index is None:
                raise ValueError(
                    f"unknown stage {label!r} in graph {name!r}; "
                    f"expected one of {PIPELINE_STAGES}")
            if index < last:
                raise ValueError(
                    f"stage {label!r} out of pipeline order in graph "
                    f"{name!r} (expected {PIPELINE_STAGES} order)")
            last = index

    def __iter__(self) -> Iterator[Stage]:
        return iter(self.stages)

    def __len__(self) -> int:
        return len(self.stages)

    def run(self, ctx: Any, trace: StageTrace | None = None,
            stages: Sequence[str] | None = None) -> Any:
        """Execute the (selected) stages in declared order.

        Args:
            ctx: mutable run context shared by the stage functions.
                When it exposes a truthy ``done`` attribute, remaining
                stages are skipped (a driver settled the verdict
                early).
            trace: optional :class:`StageTrace` for instrumentation.
            stages: optional subset of stage names to run — drivers
                use this to slice the one declared graph around
                exception boundaries without re-declaring it.
        """
        wanted = None if stages is None else {str(s) for s in stages}
        for stage in self.stages:
            if getattr(ctx, "done", False):
                break
            if wanted is not None and str(stage.name) not in wanted:
                continue
            if not stage.should_run(ctx):
                continue
            if trace is not None and stage.timed:
                with trace.stage(str(stage.name)):
                    stage(ctx)
            else:
                stage(ctx)
        return ctx
