"""repro.exec — the shared execution core.

One declared stage graph (``build → simulate → inject_faults →
normalize → acquire → refine_clock → decide → fuse``) with per-stage
instrumentation, driven three ways: serially per scenario
(:mod:`repro.engine.executor`), vectorized over a batch axis
(:mod:`repro.tensor.batch`), and incrementally per chunk
(:mod:`repro.stream.decode`).
"""

from .graph import (
    PIPELINE_STAGES,
    PROFILE_ENV,
    ExecStage,
    FuncStage,
    Stage,
    StageGraph,
    StageTrace,
    collect_traces,
    maybe_stage,
    new_trace,
    profiled,
    profiling_enabled,
    set_profiling,
)

__all__ = [
    "ExecStage", "PIPELINE_STAGES", "PROFILE_ENV",
    "Stage", "FuncStage", "StageGraph", "StageTrace",
    "collect_traces", "maybe_stage", "new_trace", "profiled",
    "profiling_enabled", "set_profiling",
]
