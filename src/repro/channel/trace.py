"""Signal traces: the RSS sample streams all algorithms consume.

Every figure in the paper is a plot of RSS versus time (often min-max
normalised).  :class:`SignalTrace` bundles samples with their sampling
rate and provenance metadata, and provides the handful of operations the
decoders and analysis code need: normalisation, slicing, resampling and
basic statistics.
"""

from __future__ import annotations

import math

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

__all__ = ["SignalTrace"]


@dataclass
class SignalTrace:
    """A uniformly sampled signal with metadata.

    Attributes:
        samples: the sample values (ADC codes or derived floats).
        sample_rate_hz: sampling frequency, > 0.
        start_time_s: timestamp of the first sample.
        meta: free-form provenance (scene parameters, receiver, etc.).
    """

    samples: np.ndarray
    sample_rate_hz: float
    start_time_s: float = 0.0
    meta: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.samples = np.asarray(self.samples, dtype=float)
        if self.samples.ndim != 1:
            raise ValueError(f"trace must be 1-D, got shape {self.samples.shape}")
        if self.sample_rate_hz <= 0.0:
            raise ValueError(
                f"sample rate must be positive, got {self.sample_rate_hz}")

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def duration_s(self) -> float:
        """Trace duration (time from first to one-past-last sample)."""
        return len(self.samples) / self.sample_rate_hz

    def times(self) -> np.ndarray:
        """Timestamps of every sample."""
        return (self.start_time_s
                + np.arange(len(self.samples)) / self.sample_rate_hz)

    def normalized(self) -> "SignalTrace":
        """Min-max normalised copy (the paper's 'Normalized RSS' axis).

        A constant trace normalises to all-zeros rather than dividing by
        zero.
        """
        lo = float(self.samples.min()) if len(self.samples) else 0.0
        hi = float(self.samples.max()) if len(self.samples) else 0.0
        span = hi - lo
        if span == 0.0:
            norm = np.zeros_like(self.samples)
        else:
            norm = (self.samples - lo) / span
        return SignalTrace(norm, self.sample_rate_hz, self.start_time_s,
                           dict(self.meta, normalized=True))

    def slice_time(self, t_start: float, t_end: float) -> "SignalTrace":
        """Sub-trace between two absolute times (inclusive of start).

        Raises:
            ValueError: if the window is empty or outside the trace.
        """
        if t_end <= t_start:
            raise ValueError("t_end must exceed t_start")
        i0 = max(0, int(np.ceil((t_start - self.start_time_s)
                                * self.sample_rate_hz)))
        i1 = min(len(self.samples),
                 int(np.floor((t_end - self.start_time_s)
                              * self.sample_rate_hz)) + 1)
        if i0 >= i1:
            raise ValueError(
                f"window [{t_start}, {t_end}] s selects no samples")
        return SignalTrace(self.samples[i0:i1].copy(), self.sample_rate_hz,
                           self.start_time_s + i0 / self.sample_rate_hz,
                           dict(self.meta))

    @property
    def end_time_s(self) -> float:
        """Timestamp one sample-period past the last sample.

        The continuity point a well-formed next chunk starts at; equals
        ``start_time_s`` for an empty trace.
        """
        return self.start_time_s + len(self.samples) / self.sample_rate_hz

    def concat(self, other: "SignalTrace",
               time_tolerance_fraction: float = 0.5) -> "SignalTrace":
        """Append a later chunk of the same stream.

        Assembling a trace from recorded pieces (chunked captures,
        logged stream segments) with raw ``np.concatenate`` silently
        accepts chunks from different receivers or with holes between
        them.  ``concat`` validates what concatenation assumes:

        * both chunks share one sampling rate, and
        * ``other`` starts where this trace ends (within a fraction of
          one sample period — timestamps carry float round-off).

        Args:
            other: the next chunk; its metadata is merged over this
                trace's (later chunk wins conflicting keys).
            time_tolerance_fraction: allowed start-time slack as a
                fraction of the sample period, in [0, 1).

        Raises:
            ValueError: on a rate mismatch or a timestamp discontinuity.
        """
        if not 0.0 <= time_tolerance_fraction < 1.0:
            raise ValueError("time tolerance fraction must be in [0, 1)")
        if not math.isclose(other.sample_rate_hz, self.sample_rate_hz,
                            rel_tol=1e-9):
            raise ValueError(
                f"cannot concat traces with different sample rates: "
                f"{self.sample_rate_hz} Hz vs {other.sample_rate_hz} Hz")
        gap = other.start_time_s - self.end_time_s
        tolerance = time_tolerance_fraction / self.sample_rate_hz
        if abs(gap) > tolerance:
            raise ValueError(
                f"chunk is not contiguous: expected start at "
                f"{self.end_time_s:.6f} s, got {other.start_time_s:.6f} s "
                f"(gap {gap:+.6f} s exceeds {tolerance:.6f} s)")
        return SignalTrace(
            np.concatenate([self.samples, other.samples]),
            self.sample_rate_hz, self.start_time_s,
            dict(self.meta, **other.meta))

    @classmethod
    def from_chunks(cls, chunks: Sequence[np.ndarray], sample_rate_hz: float,
                    start_time_s: float = 0.0,
                    meta: dict[str, Any] | None = None) -> "SignalTrace":
        """Assemble one trace from consecutive raw sample chunks.

        Chunks are treated as back-to-back pieces of one uniformly
        sampled stream (no per-chunk timestamps to validate — use
        :meth:`concat` for timestamped pieces).  Empty chunks are
        allowed and contribute nothing.
        """
        if sample_rate_hz <= 0.0:
            raise ValueError(
                f"sample rate must be positive, got {sample_rate_hz}")
        arrays = [np.asarray(c, dtype=float) for c in chunks]
        for i, arr in enumerate(arrays):
            if arr.ndim != 1:
                raise ValueError(
                    f"chunk {i} must be 1-D, got shape {arr.shape}")
        samples = (np.concatenate(arrays) if arrays
                   else np.empty(0, dtype=float))
        return cls(samples, sample_rate_hz, start_time_s,
                   dict(meta) if meta else {})

    def resampled(self, new_rate_hz: float) -> "SignalTrace":
        """Linear-interpolation resample to a new rate."""
        if new_rate_hz <= 0.0:
            raise ValueError(f"new rate must be positive, got {new_rate_hz}")
        if len(self.samples) < 2:
            return SignalTrace(self.samples.copy(), new_rate_hz,
                               self.start_time_s, dict(self.meta))
        old_t = self.times()
        n_new = max(2, int(round(self.duration_s * new_rate_hz)))
        new_t = self.start_time_s + np.arange(n_new) / new_rate_hz
        new_t = new_t[new_t <= old_t[-1] + 1e-12]
        new_samples = np.interp(new_t, old_t, self.samples)
        return SignalTrace(new_samples, new_rate_hz, self.start_time_s,
                           dict(self.meta))

    def swing(self) -> float:
        """Peak-to-peak amplitude."""
        if len(self.samples) == 0:
            return 0.0
        return float(self.samples.max() - self.samples.min())

    def mean(self) -> float:
        """Mean level."""
        return float(self.samples.mean()) if len(self.samples) else 0.0

    def describe(self) -> str:
        """One-line summary for logs and reports."""
        return (f"SignalTrace({len(self.samples)} samples @ "
                f"{self.sample_rate_hz:.0f} Hz, {self.duration_s:.2f} s, "
                f"range [{self.samples.min():.1f}, {self.samples.max():.1f}])"
                if len(self.samples) else "SignalTrace(empty)")
