"""Channel substrate: scenes, mobility, distortion, simulation, traces."""

from .distortion import (
    CLEAR,
    DENSE_FOG,
    HAZE,
    LIGHT_FOG,
    Atmosphere,
    visibility_to_extinction,
)
from .mobility import (
    KMH_TO_MPS,
    ConstantSpeed,
    LinearRamp,
    MotionProfile,
    PiecewiseConstantSpeed,
    SpeedJitter,
    speed_doubling_profile,
    time_to_reach,
)
from .scene import MovingObject, PassiveScene
from .simulator import ChannelSimulator, SimulatorConfig
from .trace import SignalTrace

__all__ = [
    "Atmosphere", "CLEAR", "LIGHT_FOG", "DENSE_FOG", "HAZE",
    "visibility_to_extinction",
    "KMH_TO_MPS", "ConstantSpeed", "LinearRamp", "MotionProfile",
    "PiecewiseConstantSpeed", "SpeedJitter", "speed_doubling_profile",
    "time_to_reach",
    "MovingObject", "PassiveScene",
    "ChannelSimulator", "SimulatorConfig",
    "SignalTrace",
]
