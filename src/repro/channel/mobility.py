"""Mobility profiles: how tagged objects move under the receiver.

The paper's experiments span constant-speed passes (8 cm/s on the work
plane, 18 km/h outdoors), a speed that *doubles mid-packet* (the Fig. 8
distortion scenario) and, in general, "variable speeds of the mobile
object" as a commonplace channel distortion (Section 3).

A profile maps time to the position of the object's **leading edge**
along the motion axis; position must be non-decreasing (objects don't
back up under the receiver in any of the paper's scenarios).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

__all__ = [
    "MotionProfile",
    "ConstantSpeed",
    "PiecewiseConstantSpeed",
    "LinearRamp",
    "SpeedJitter",
    "speed_doubling_profile",
    "time_to_reach",
    "KMH_TO_MPS",
]

#: Conversion factor: km/h to m/s (the paper's 18 km/h car = 5 m/s).
KMH_TO_MPS = 1000.0 / 3600.0


class MotionProfile:
    """Base class: position of the object's leading edge over time."""

    def position(self, t: np.ndarray | float) -> np.ndarray:
        """Leading-edge position (m) at time(s) ``t`` (s)."""
        raise NotImplementedError

    def speed(self, t: np.ndarray | float) -> np.ndarray:
        """Instantaneous speed (m/s); default numeric differentiation."""
        tt = np.asarray(t, dtype=float)
        dt = 1e-4
        return (np.asarray(self.position(tt + dt))
                - np.asarray(self.position(tt))) / dt


@dataclass
class ConstantSpeed(MotionProfile):
    """Uniform motion: ``x(t) = x0 + v * t``.

    Attributes:
        speed_mps: constant speed (m/s), > 0.
        start_position_m: leading-edge position at t = 0.
    """

    speed_mps: float
    start_position_m: float = 0.0

    def __post_init__(self) -> None:
        if self.speed_mps <= 0.0:
            raise ValueError(f"speed must be positive, got {self.speed_mps}")

    def position(self, t):
        return self.start_position_m + self.speed_mps * np.asarray(t, dtype=float)

    def speed(self, t):
        return np.full_like(np.asarray(t, dtype=float), self.speed_mps)


@dataclass
class PiecewiseConstantSpeed(MotionProfile):
    """Speed that changes at given *positions* along the track.

    The Fig. 8 experiment is positional: "this object moves at a certain
    speed when its first half (preamble) passes the receiver, and the
    speed is doubled when the second half (Data field) passes by" — the
    change is tied to how much of the object has gone past, so the
    breakpoints are positions, not times.

    Attributes:
        breakpoints_m: positions where the speed changes (ascending).
        speeds_mps: ``len(breakpoints) + 1`` speeds, all > 0.
        start_position_m: leading-edge position at t = 0.
    """

    breakpoints_m: Sequence[float]
    speeds_mps: Sequence[float]
    start_position_m: float = 0.0

    def __post_init__(self) -> None:
        if len(self.speeds_mps) != len(self.breakpoints_m) + 1:
            raise ValueError(
                f"need {len(self.breakpoints_m) + 1} speeds for "
                f"{len(self.breakpoints_m)} breakpoints, got {len(self.speeds_mps)}")
        if any(v <= 0.0 for v in self.speeds_mps):
            raise ValueError("all speeds must be positive")
        bps = list(self.breakpoints_m)
        if bps != sorted(bps):
            raise ValueError("breakpoints must be ascending")
        if bps and bps[0] <= self.start_position_m:
            raise ValueError("breakpoints must lie ahead of the start position")
        # Precompute the time at which each breakpoint is reached.
        self._bp_times: list[float] = []
        t_acc = 0.0
        pos = self.start_position_m
        for bp, v in zip(bps, self.speeds_mps):
            t_acc += (bp - pos) / v
            self._bp_times.append(t_acc)
            pos = bp

    def position(self, t):
        tt = np.atleast_1d(np.asarray(t, dtype=float))
        out = np.empty_like(tt)
        bp_times = np.array([0.0] + self._bp_times)
        bp_pos = np.array([self.start_position_m] + list(self.breakpoints_m))
        speeds = np.array(self.speeds_mps)
        seg = np.clip(np.searchsorted(bp_times, tt, side="right") - 1,
                      0, len(speeds) - 1)
        out = bp_pos[seg] + speeds[seg] * (tt - bp_times[seg])
        return out if np.ndim(t) else float(out[0])

    def speed(self, t):
        tt = np.atleast_1d(np.asarray(t, dtype=float))
        bp_times = np.array([0.0] + self._bp_times)
        speeds = np.array(self.speeds_mps)
        seg = np.clip(np.searchsorted(bp_times, tt, side="right") - 1,
                      0, len(speeds) - 1)
        out = speeds[seg]
        return out if np.ndim(t) else float(out[0])


@dataclass
class LinearRamp(MotionProfile):
    """Uniform acceleration: ``x(t) = x0 + v0 t + a t^2 / 2``.

    Speed is clamped to stay positive: deceleration stops at (near) zero
    rather than reversing, since the paper's objects never back up.

    Attributes:
        initial_speed_mps: speed at t = 0, > 0.
        acceleration_mps2: constant acceleration.
        start_position_m: leading-edge position at t = 0.
    """

    initial_speed_mps: float
    acceleration_mps2: float = 0.0
    start_position_m: float = 0.0

    def __post_init__(self) -> None:
        if self.initial_speed_mps <= 0.0:
            raise ValueError("initial speed must be positive")

    def _stall_time(self) -> float:
        if self.acceleration_mps2 >= 0.0:
            return math.inf
        return self.initial_speed_mps / -self.acceleration_mps2

    def position(self, t):
        tt = np.asarray(t, dtype=float)
        t_eff = np.minimum(tt, self._stall_time())
        return (self.start_position_m + self.initial_speed_mps * t_eff
                + 0.5 * self.acceleration_mps2 * t_eff**2)

    def speed(self, t):
        tt = np.asarray(t, dtype=float)
        v = self.initial_speed_mps + self.acceleration_mps2 * tt
        return np.clip(v, 0.0, None)


@dataclass
class SpeedJitter(MotionProfile):
    """A base profile with smooth random speed variation.

    Models hand-pushed trolleys and human drivers: the speed wanders
    around the nominal value with bounded relative deviation.

    Attributes:
        base: the underlying profile.
        relative_deviation: peak speed deviation fraction, in [0, 0.9].
        wavelength_s: time scale of the wander.
        seed: RNG seed (the jitter is frozen at construction).
    """

    base: MotionProfile
    relative_deviation: float = 0.1
    wavelength_s: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.relative_deviation <= 0.9:
            raise ValueError("relative deviation must be in [0, 0.9]")
        if self.wavelength_s <= 0.0:
            raise ValueError("wavelength must be positive")
        rng = np.random.default_rng(self.seed)
        self._phases = rng.uniform(0.0, 2.0 * math.pi, size=3)
        self._weights = rng.uniform(0.5, 1.0, size=3)
        self._weights /= self._weights.sum()

    def _modulation_integral(self, t: np.ndarray) -> np.ndarray:
        """Integral of the (1 + jitter) speed modulation from 0 to t."""
        total = np.asarray(t, dtype=float).copy()
        for k, (phase, w) in enumerate(zip(self._phases, self._weights)):
            omega = 2.0 * math.pi * (k + 1) / self.wavelength_s
            total = total + (self.relative_deviation * w / omega
                             * (np.sin(omega * np.asarray(t) + phase)
                                - math.sin(phase)))
        return total

    def position(self, t):
        # Warp time through the jitter modulation, then ask the base
        # profile; for constant-speed bases this is exact.
        warped = self._modulation_integral(np.asarray(t, dtype=float))
        return self.base.position(warped)


def speed_doubling_profile(packet_length_m: float, initial_speed_mps: float,
                           start_position_m: float,
                           halfway_offset_m: float | None = None,
                           ) -> PiecewiseConstantSpeed:
    """The Fig. 8 distortion: speed doubles when the second half passes.

    Args:
        packet_length_m: physical packet length on the object.
        initial_speed_mps: speed while the first half (preamble) passes.
        start_position_m: leading-edge position at t = 0 (negative:
            upstream of the receiver at the origin).
        halfway_offset_m: position of the receiver relative to origin;
            the speed change happens when the packet midpoint crosses it.
    """
    if packet_length_m <= 0.0:
        raise ValueError("packet length must be positive")
    receiver_x = 0.0 if halfway_offset_m is None else halfway_offset_m
    # The packet midpoint passes the receiver when the leading edge is
    # half a packet length beyond it.
    change_at = receiver_x + packet_length_m / 2.0
    return PiecewiseConstantSpeed(
        breakpoints_m=[change_at],
        speeds_mps=[initial_speed_mps, 2.0 * initial_speed_mps],
        start_position_m=start_position_m,
    )


def time_to_reach(profile: MotionProfile, target_position_m: float,
                  t_max_s: float = 3600.0) -> float:
    """Earliest time the leading edge reaches a target position.

    Assumes the profile is non-decreasing (true for all profiles here)
    and uses bisection.

    Raises:
        ValueError: if the target is not reached within ``t_max_s``.
    """
    if float(profile.position(0.0)) >= target_position_m:
        return 0.0
    if float(profile.position(t_max_s)) < target_position_m:
        raise ValueError(
            f"target {target_position_m} m not reached within {t_max_s} s")
    lo, hi = 0.0, t_max_s
    for _ in range(100):
        mid = (lo + hi) / 2.0
        if float(profile.position(mid)) < target_position_m:
            lo = mid
        else:
            hi = mid
    return hi
