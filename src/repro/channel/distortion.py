"""Channel distortions: fog, humidity, dirt (Section 3).

"Similar to radio systems, our channel will be exposed to distortions.
For example: fog, humidity, dirt on top of the reflective surfaces and
variable speeds of the mobile object will be commonplace phenomena
affecting the incoming signal and making it harder to decode."

Variable speed lives in :mod:`repro.channel.mobility`; dirt lives on
:meth:`repro.optics.materials.Material.degraded`.  This module models the
*medium*: atmospheric extinction attenuates the reflected signal over the
surface-to-receiver path (Beer-Lambert), and scattering adds a veiling
glare component that raises the noise floor without adding signal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["Atmosphere", "CLEAR", "LIGHT_FOG", "DENSE_FOG", "HAZE",
           "visibility_to_extinction"]


def visibility_to_extinction(visibility_m: float) -> float:
    """Koschmieder relation: extinction coefficient from visibility.

    ``beta = 3.912 / V`` for the standard 2 % contrast threshold.

    Args:
        visibility_m: meteorological visibility (m), > 0.
    """
    if visibility_m <= 0.0:
        raise ValueError(f"visibility must be positive, got {visibility_m}")
    return 3.912 / visibility_m


@dataclass(frozen=True)
class Atmosphere:
    """Optical state of the air between surface and receiver.

    Attributes:
        extinction_per_m: Beer-Lambert extinction coefficient (1/m).
        veiling_glare_fraction: fraction of the ambient level scattered
            into the receiver as an unmodulated pedestal (fog glow).
        name: label for reports.
    """

    extinction_per_m: float = 0.0
    veiling_glare_fraction: float = 0.0
    name: str = "clear"

    def __post_init__(self) -> None:
        if self.extinction_per_m < 0.0:
            raise ValueError("extinction cannot be negative")
        if not 0.0 <= self.veiling_glare_fraction < 1.0:
            raise ValueError("veiling glare fraction must be in [0, 1)")

    @classmethod
    def from_visibility(cls, visibility_m: float,
                        name: str = "fog") -> "Atmosphere":
        """Build an atmosphere from a visibility figure."""
        beta = visibility_to_extinction(visibility_m)
        # Denser fog scatters more ambient light into the aperture.
        glare = min(0.5, 40.0 * beta / 3.912)
        return cls(extinction_per_m=beta, veiling_glare_fraction=glare,
                   name=name)

    def transmission(self, path_length_m: float | np.ndarray) -> np.ndarray | float:
        """Beer-Lambert transmission over a path."""
        path = np.asarray(path_length_m, dtype=float)
        if np.any(path < 0.0):
            raise ValueError("path length cannot be negative")
        out = np.exp(-self.extinction_per_m * path)
        return float(out) if out.ndim == 0 else out

    def signal_attenuation(self, receiver_height_m: float) -> float:
        """Round-trip-ish attenuation of the reflected signal.

        Ambient light crosses the fog once on the way down and the
        reflection crosses it again on the way up over roughly the
        receiver height; the down-path is shared with the noise floor,
        so the *differential* attenuation of the signal relative to the
        ambient pedestal is the up-path.
        """
        if receiver_height_m <= 0.0:
            raise ValueError("receiver height must be positive")
        return float(self.transmission(receiver_height_m))

    def ambient_pedestal(self, ambient_lux: float) -> float:
        """Extra unmodulated lux added by in-fog scattering."""
        if ambient_lux < 0.0:
            raise ValueError("ambient level cannot be negative")
        return ambient_lux * self.veiling_glare_fraction


#: Clear air: no extinction, no glare.
CLEAR = Atmosphere(name="clear")

#: Light fog, ~1 km visibility.
LIGHT_FOG = Atmosphere.from_visibility(1000.0, name="light_fog")

#: Dense fog, ~100 m visibility.
DENSE_FOG = Atmosphere.from_visibility(100.0, name="dense_fog")

#: Humid haze, ~4 km visibility.
HAZE = Atmosphere.from_visibility(4000.0, name="haze")
