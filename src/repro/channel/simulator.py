"""The passive-VLC channel simulator.

This is the substrate that replaces the paper's physical testbed.  For
each time sample it computes the illuminance arriving at the receiver
aperture, expressed in **ambient-referred lux** so that saturation and
sensitivity behave exactly as tabulated in Fig. 11:

``E_in(t) = a_t * E_amb(t) + s_t * C * Lbar(t) * T_atm``

where

* ``E_amb`` is the scene's noise floor (the lux-meter reading the paper
  quotes: 100/450/3700/5500/6200 lux, ...), attenuated by the cap's
  ambient rejection ``a_t``;
* ``Lbar`` is the footprint-weighted luminance of the ground/tag/car
  below the receiver: the tag's effective-reflectance profile convolved
  with the footprint kernel times the local ground illuminance — this
  term carries the symbols and the FoV blur of Fig. 2(b);
* ``C`` converts detector-level signal flux into ambient-equivalent lux
  (``2 * pi * Omega_eff / Omega_fov``): the saturation specs were
  measured with a uniform field filling the acceptance cone, so a
  footprint signal must be referred through the same aperture;
* ``T_atm`` is the atmospheric signal attenuation and ``s_t`` the cap's
  in-FoV transmission.

The optical waveform is then pushed through the receiver front end
(detector response/saturation/noise, amplifier, ADC) to produce the RSS
sample stream.

Two kernels are available (``"chord"`` fast / ``"exact"`` full lateral
ray quadrature); the ablation benchmark quantifies their agreement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..hardware.frontend import ReceiverFrontEnd
from ..optics.propagation import FootprintKernel, footprint_kernel
from ..optics.reflection import effective_reflectance
from .scene import MovingObject, PassiveScene
from .trace import SignalTrace

__all__ = ["SimulatorConfig", "ChannelSimulator"]


@dataclass(frozen=True)
class SimulatorConfig:
    """Numerical knobs of the channel simulation.

    Attributes:
        sample_rate_hz: RSS sampling rate; the paper's outdoor runs use
            2 kS/s, parameter sweeps can drop this for speed.
        spatial_step_m: kernel sampling interval; ``None`` picks
            ``min(footprint_radius / 8, finest_feature / 4)``.
        kernel_method: ``"chord"`` or ``"exact"`` (see propagation).
        include_noise: disable to obtain the noiseless optical truth.
        seed: RNG seed for receiver noise.
        profile_oversample: how many profile samples per kernel step.
        rho_chunk_elements: peak size (elements) of the per-chunk
            ``(time, offset)`` reflectance matrix; long captures are
            evaluated in time-slices of at most this many elements so
            memory stays bounded no matter the duration.  The default
            (4M elements = 32 MB of float64 per temporary) keeps every
            paper-scale capture in a single chunk.
    """

    sample_rate_hz: float = 2_000.0
    spatial_step_m: float | None = None
    kernel_method: str = "chord"
    include_noise: bool = True
    seed: int | None = 1234
    profile_oversample: int = 2
    rho_chunk_elements: int = 4_000_000

    def __post_init__(self) -> None:
        if self.sample_rate_hz <= 0.0:
            raise ValueError("sample rate must be positive")
        if self.spatial_step_m is not None and self.spatial_step_m <= 0.0:
            raise ValueError("spatial step must be positive")
        if self.kernel_method not in ("chord", "exact"):
            raise ValueError(f"unknown kernel method {self.kernel_method!r}")
        if self.profile_oversample < 1:
            raise ValueError("profile oversample must be >= 1")
        if self.rho_chunk_elements < 1:
            raise ValueError("rho chunk size must be >= 1")


class ChannelSimulator:
    """Simulates one scene as seen by one receiver front end.

    The scene and config are treated as immutable after construction:
    expensive scene-derived quantities (footprint kernel, illumination
    geometry, object reflectance profiles, the static ground-illuminance
    field) are computed once and cached on the instance, so repeated
    captures pay only for the time-dependent physics.
    """

    def __init__(self, scene: PassiveScene, frontend: ReceiverFrontEnd,
                 config: SimulatorConfig | None = None) -> None:
        self.scene = scene
        self.frontend = frontend
        self.config = config or SimulatorConfig()
        self._kernel: FootprintKernel | None = None
        self._geometry = None
        self._profiles: dict[tuple[int, float],
                             tuple[np.ndarray, np.ndarray]] = {}
        self._static_field: tuple[np.ndarray, float] | None = None

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    def _auto_step(self) -> float:
        """Pick a spatial step resolving both footprint and strips."""
        fov = self.frontend.effective_fov
        radius = self.scene.receiver_height_m * math.tan(fov.half_angle_rad)
        step = radius / 8.0
        for obj in self.scene.objects:
            feature = getattr(obj.surface, "min_feature_m", None)
            if feature:
                step = min(step, feature / 4.0)
        # Keep the kernel a sane size even for pathological inputs.
        return max(step, radius / 512.0)

    @property
    def kernel(self) -> FootprintKernel:
        """The (cached) footprint kernel for this scene + receiver."""
        if self._kernel is None:
            step = self.config.spatial_step_m or self._auto_step()
            self._kernel = footprint_kernel(
                self.scene.receiver_height_m, self.frontend.effective_fov,
                step, method=self.config.kernel_method)
        return self._kernel

    @property
    def footprint_radius_m(self) -> float:
        """Footprint radius on the ground."""
        fov = self.frontend.effective_fov
        return self.scene.receiver_height_m * math.tan(fov.half_angle_rad)

    def ambient_equivalent_coupling(self) -> float:
        """Factor ``C`` converting footprint luminance to ambient lux.

        A uniform ambient field of E lux delivers detector flux
        proportional to ``E * Omega_fov / (2 pi)``; the footprint signal
        delivers ``Omega_eff * Lbar``.  Referring the signal to ambient
        units therefore multiplies by ``2 pi * Omega_eff / Omega_fov``.
        """
        fov = self.frontend.effective_fov
        omega_fov = 2.0 * math.pi * (1.0 - math.cos(fov.half_angle_rad))
        return 2.0 * math.pi * self.kernel.gain / omega_fov

    # ------------------------------------------------------------------
    # Optical model
    # ------------------------------------------------------------------
    def illumination_geometry(self):
        """The (cached) source -> patch -> receiver geometry."""
        if self._geometry is None:
            self._geometry = self.scene.illumination_geometry()
        return self._geometry

    def _object_profile(self, obj: MovingObject, du: float,
                        geometry) -> tuple[np.ndarray, np.ndarray]:
        """One object's reflectance profile on a fine grid (cached).

        The profile depends only on the surface, the sampling step and
        the scene geometry — none of which change over the simulator's
        lifetime — so each object is sampled once and reused by every
        subsequent capture.
        """
        key = (id(obj), du)
        cached = self._profiles.get(key)
        if cached is None:
            length = obj.surface.length_m
            n = max(4, int(math.ceil(length / du)) + 1)
            us = np.linspace(0.0, length, n)
            profile = obj.surface.reflectance_samples(us, geometry)
            cached = (us, np.asarray(profile, dtype=float))
            self._profiles[key] = cached
        return cached

    def _static_ground_field(self, offsets: np.ndarray,
                             ) -> tuple[np.ndarray, float]:
        """``(E_static(x), rho_ground)``, cached per simulator.

        Separable illumination: ``E(x, t) = E_static(x) * flicker(t)``.
        """
        if self._static_field is None:
            flick0 = float(np.asarray(self.scene.source.flicker(0.0)))
            if flick0 <= 0.0:
                raise RuntimeError("source flicker must be positive at t=0")
            e_static = (np.asarray(
                self.scene.source.ground_illuminance(offsets, 0.0),
                dtype=float) / flick0)
            rho_ground = effective_reflectance(self.scene.ground,
                                               self.illumination_geometry())
            self._static_field = (e_static, rho_ground)
        return self._static_field

    def _rho_block(self, t: np.ndarray, offsets: np.ndarray,
                   rho_ground: float, du: float) -> np.ndarray:
        """The ``(len(t), len(offsets))`` effective-reflectance matrix."""
        geometry = self.illumination_geometry()
        rho = np.full((len(t), len(offsets)), rho_ground, dtype=float)
        total_share = sum(obj.fov_share for obj in self.scene.objects)
        rho *= max(0.0, 1.0 - total_share)
        for obj in self.scene.objects:
            us, profile = self._object_profile(obj, du, geometry)
            local = obj.local_coordinates(offsets[None, :], t[:, None])
            inside = (local >= 0.0) & (local <= obj.surface.length_m)
            sampled = np.interp(local.ravel(), us,
                                profile).reshape(local.shape)
            contribution = np.where(inside, sampled, rho_ground)
            rho += obj.fov_share * contribution
        return rho

    def weighted_luminance(self, t: np.ndarray) -> np.ndarray:
        """Footprint-weighted luminance ``Lbar(t)`` (cd/m^2).

        The time x offset reflectance matrix is evaluated in time
        slices of at most ``config.rho_chunk_elements`` elements so
        arbitrarily long captures run in bounded memory.
        """
        t = np.asarray(t, dtype=float)
        kern = self.kernel
        offsets = kern.offsets + self.scene.receiver_x_m
        e_static, rho_ground = self._static_ground_field(offsets)
        flick = np.asarray(self.scene.source.flicker(t), dtype=float)

        weight_vec = kern.weights * e_static
        du = ((kern.offsets[1] - kern.offsets[0])
              / self.config.profile_oversample
              if self.scene.objects else 0.0)
        chunk = max(1, self.config.rho_chunk_elements // max(1, len(offsets)))
        weighted = np.empty(len(t), dtype=float)
        for lo in range(0, len(t), chunk):
            block = t[lo:lo + chunk]
            rho = self._rho_block(block, offsets, rho_ground, du)
            weighted[lo:lo + chunk] = rho @ weight_vec
        return weighted * flick

    def aperture_illuminance(self, t: np.ndarray) -> np.ndarray:
        """Ambient-referred illuminance at the receiver aperture (lux)."""
        t = np.asarray(t, dtype=float)
        ambient = np.asarray(self.scene.noise_floor_lux(t), dtype=float)
        ambient = np.broadcast_to(ambient, t.shape).astype(float)
        signal = (self.weighted_luminance(t)
                  * self.ambient_equivalent_coupling()
                  * self.scene.atmosphere.signal_attenuation(
                      self.scene.receiver_height_m))
        return (self.frontend.ambient_transmission * ambient
                + self.frontend.signal_transmission * signal)

    # ------------------------------------------------------------------
    # End-to-end capture
    # ------------------------------------------------------------------
    def time_grid(self, duration_s: float, t_start_s: float = 0.0) -> np.ndarray:
        """Uniform sample times for a capture window."""
        if duration_s <= 0.0:
            raise ValueError(f"duration must be positive, got {duration_s}")
        n = max(2, int(round(duration_s * self.config.sample_rate_hz)))
        return t_start_s + np.arange(n) / self.config.sample_rate_hz

    def optical_trace(self, duration_s: float,
                      t_start_s: float = 0.0) -> SignalTrace:
        """The noiseless optical waveform (lux) before the receiver."""
        t = self.time_grid(duration_s, t_start_s)
        lux = self.aperture_illuminance(t)
        return SignalTrace(lux, self.config.sample_rate_hz, t_start_s,
                           meta=self._meta(kind="optical"))

    def capture(self, duration_s: float, t_start_s: float = 0.0) -> SignalTrace:
        """Run the scene through the receiver: RSS codes over time."""
        t = self.time_grid(duration_s, t_start_s)
        lux = self.aperture_illuminance(t)
        if self.config.include_noise:
            rng = np.random.default_rng(self.config.seed)
        else:
            rng = _ZeroNoise()
        counts = self.frontend.capture(
            lux, sample_rate_hz=self.config.sample_rate_hz, rng=rng)
        return SignalTrace(counts.astype(float), self.config.sample_rate_hz,
                           t_start_s, meta=self._meta(kind="rss"))

    def pass_window(self, margin_fraction: float = 0.3,
                    min_margin_s: float = 0.05) -> tuple[float, float]:
        """Time window covering every object's pass through the FoV.

        Returns:
            ``(t_start, duration)`` padded by a margin so the decoder
            sees the quiet baseline before and after the packet.
        """
        if not self.scene.objects:
            raise ValueError("scene has no moving objects")
        radius = self.footprint_radius_m
        enters, exits = [], []
        for obj in self.scene.objects:
            t_in, t_out = obj.entry_exit_times(
                radius, center_x_m=self.scene.receiver_x_m)
            enters.append(t_in)
            exits.append(t_out)
        t0, t1 = min(enters), max(exits)
        margin = max(min_margin_s, margin_fraction * (t1 - t0))
        return max(0.0, t0 - margin), (t1 - t0) + 2.0 * margin

    def capture_pass(self, margin_fraction: float = 0.3) -> SignalTrace:
        """Capture exactly one full pass of all objects."""
        t_start, duration = self.pass_window(margin_fraction)
        return self.capture(duration, t_start)

    def optical_pass(self, margin_fraction: float = 0.3) -> SignalTrace:
        """Noiseless optical waveform over one full pass."""
        t_start, duration = self.pass_window(margin_fraction)
        return self.optical_trace(duration, t_start)

    def _meta(self, kind: str) -> dict:
        return {
            "kind": kind,
            "source": self.scene.source.name,
            "receiver": self.frontend.describe(),
            "height_m": self.scene.receiver_height_m,
            "noise_floor_lux": self.scene.nominal_noise_floor_lux(),
            "footprint_radius_m": self.footprint_radius_m,
            "kernel_method": self.config.kernel_method,
            "objects": [obj.name for obj in self.scene.objects],
        }


class _ZeroNoise:
    """An rng stand-in that produces zeros (noise-free captures)."""

    def normal(self, loc: float = 0.0, scale: float = 1.0,
               size=None) -> np.ndarray:
        return np.zeros(size if size is not None else ())
