"""Scenes: one emitter, one receiver, moving reflective objects.

A :class:`PassiveScene` assembles the three block elements of the
paper's communication system (Section 2) — the emitter (any ambient
source), the 'packets' (reflective surfaces on moving objects) and the
receiver (described by its height; the detector itself lives in
:mod:`repro.hardware`) — plus the ground material and the atmosphere.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..optics.geometry import Vec3
from ..optics.materials import BLACK_PAPER_GROUND, Material
from ..optics.reflection import IlluminationGeometry
from ..optics.sources import AmbientLightSource
from ..tags.surface import LinearSurface
from .distortion import CLEAR, Atmosphere
from .mobility import MotionProfile, time_to_reach

__all__ = ["MovingObject", "PassiveScene"]


@dataclass
class MovingObject:
    """A reflective surface moving through the receiver's FoV.

    Attributes:
        surface: the linear reflectance profile being swept.
        motion: leading-edge trajectory.
        name: label for reports.
        fov_share: lateral fraction of the footprint this object covers.
            Two side-by-side tags with shares 0.5/0.5 reproduce the
            'packet collision' setup of Section 4.3; a share above 0.5
            makes one packet "dominate the reflected light".
    """

    surface: LinearSurface
    motion: MotionProfile
    name: str = "object"
    fov_share: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.fov_share <= 1.0:
            raise ValueError(
                f"fov_share must be in (0, 1], got {self.fov_share}")

    def local_coordinates(self, ground_x: np.ndarray,
                          t: np.ndarray) -> np.ndarray:
        """Map ground positions to the surface's local coordinate.

        Local coordinate 0 is the leading edge (first part to arrive
        under the receiver) and grows towards the tail; a ground point
        ``x`` sits at ``u = x_lead(t) - x`` while ``0 <= u <= length``.
        """
        lead = np.asarray(self.motion.position(t), dtype=float)
        return lead - np.asarray(ground_x, dtype=float)

    def entry_exit_times(self, window_half_width_m: float,
                         t_max_s: float = 3600.0,
                         center_x_m: float = 0.0) -> tuple[float, float]:
        """Times when the object enters and fully leaves a +-w window.

        Args:
            window_half_width_m: half-width of the observation window
                centred at the receiver's ground position.
            t_max_s: search horizon.
            center_x_m: ground position of the window centre (the
                receiver's ``receiver_x_m``; 0 for the default
                single-receiver setup).

        Returns:
            ``(t_enter, t_exit)``: leading edge reaches ``center - w`` /
            trailing edge passes ``center + w``.
        """
        t_enter = time_to_reach(self.motion,
                                center_x_m - window_half_width_m, t_max_s)
        t_exit = time_to_reach(
            self.motion,
            center_x_m + window_half_width_m + self.surface.length_m,
            t_max_s)
        return t_enter, t_exit


@dataclass
class PassiveScene:
    """The full physical configuration of one experiment.

    Attributes:
        source: the ambient emitter.
        receiver_height_m: receiver height above the surface plane (m).
        objects: moving reflective objects (tags, cars, ...).
        ground: material of the plane where nothing covers it.
        atmosphere: optical state of the air (fog/haze/clear).
        receiver_x_m: receiver ground position along the motion axis.
    """

    source: AmbientLightSource
    receiver_height_m: float
    objects: list[MovingObject] = field(default_factory=list)
    ground: Material = BLACK_PAPER_GROUND
    atmosphere: Atmosphere = CLEAR
    receiver_x_m: float = 0.0

    def __post_init__(self) -> None:
        if self.receiver_height_m <= 0.0:
            raise ValueError(
                f"receiver height must be positive, got {self.receiver_height_m}")
        shares = sum(obj.fov_share for obj in self.objects)
        if self.objects and shares > 1.0 + 1e-9:
            raise ValueError(
                f"object FoV shares sum to {shares:.3f} > 1; they share one footprint")

    def illumination_geometry(self) -> IlluminationGeometry:
        """Source -> patch -> receiver geometry at the receiver's nadir.

        Evaluated at the footprint centre; the specular-lobe angle varies
        only slightly across the footprint for all the paper's setups.
        """
        incident = self.source.incident_direction(self.receiver_x_m)
        return IlluminationGeometry(
            incident_direction=incident,
            view_direction=Vec3(0.0, 0.0, 1.0),
            diffuse_fraction=self.source.diffuse_fraction(),
        )

    def noise_floor_lux(self, t: np.ndarray | float) -> np.ndarray:
        """Ambient noise floor at the receiver, including fog glare."""
        base = np.asarray(self.source.receiver_plane_illuminance(t),
                          dtype=float)
        if self.atmosphere.veiling_glare_fraction > 0.0:
            base = base + self.atmosphere.ambient_pedestal(float(np.mean(base)))
        return base

    def nominal_noise_floor_lux(self) -> float:
        """Time-averaged noise floor (the single number the paper quotes)."""
        t = np.linspace(0.0, 0.1, 256)
        return float(np.mean(self.noise_floor_lux(t)))

    def with_receiver_height(self, height_m: float) -> "PassiveScene":
        """Copy of the scene at a different receiver height (for sweeps)."""
        return PassiveScene(
            source=self.source,
            receiver_height_m=height_m,
            objects=self.objects,
            ground=self.ground,
            atmosphere=self.atmosphere,
            receiver_x_m=self.receiver_x_m,
        )
