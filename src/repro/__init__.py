"""repro — reproduction of "Passive Communication with Ambient Light".

Wang, Zuniga, Giustiniano — CoNEXT 2016 (DOI 10.1145/2999572.2999584).

The package simulates a passive visible-light communication channel:
unmodulated ambient light (LED lamp, fluorescent ceiling, the sun)
reflects off coded surfaces carried by moving objects, and tiny
photodiode/LED receivers decode the disturbed light.

Quickstart::

    from repro import PassiveLink, Sun, LedReceiver, ReceiverFrontEnd

    link = PassiveLink(
        source=Sun(ground_lux=6200.0),
        frontend=ReceiverFrontEnd(detector=LedReceiver.red_5mm()),
        receiver_height_m=0.75,
    )
    report = link.transmit("10", speed_mps=5.0)
    assert report.success

Subpackages:

* ``repro.optics``    — photometry, materials, sources, reflection
* ``repro.hardware``  — OPT101 photodiode, RX-LED, amplifier, ADC
* ``repro.tags``      — Manchester coding, packet format, tag surfaces
* ``repro.channel``   — scenes, mobility, distortions, the simulator
* ``repro.dsp``       — filters, peaks, spectra, DTW
* ``repro.core``      — decoder, classifier, collision analysis, links
* ``repro.vehicles``  — car optical signatures (Section 5)
* ``repro.net``       — networked receivers (Section 6 future work)
* ``repro.analysis``  — metrics, sweeps, per-figure experiments
* ``repro.engine``    — batched, parallel scenario execution with a
  content-hash result cache and the ``repro-engine`` CLI
* ``repro.scenarios`` — composable traffic-scenario families (convoys,
  intersections, weather and light regimes) feeding the engine
* ``repro.perf``      — the tracked performance harness: timed hot-path
  workloads, ``BENCH_perf.json`` artifacts, baseline regression gating
  (``repro-engine bench``)
* ``repro.stream``    — the online streaming-decode runtime: chunked
  ingestion, incremental acquisition, latency-stamped decode events
  and the concurrent multi-receiver session layer
  (``repro-engine stream``)

Scenario grids run through the engine::

    from repro.engine import BatchRunner, ScenarioSpec, expand_grid

    template = ScenarioSpec(source="sun", detector="led", cap=False,
                            ground="tarmac", bits="00",
                            symbol_width_m=0.1, speed_mps=5.0,
                            receiver_height_m=0.25)
    specs = expand_grid(template, {"ground_lux": [100.0, 450.0, 6200.0],
                                   "seed": [2, 3, 4, 5, 6]})
    result = BatchRunner.local().run(specs)

Or draw whole scenario families from the zoo::

    from repro import expand_family

    specs = expand_family("convoy*fog", count=500, seed=1)
"""

from .channel import (
    ChannelSimulator,
    ConstantSpeed,
    MovingObject,
    PassiveScene,
    SignalTrace,
    SimulatorConfig,
)
from .core import (
    AdaptiveThresholdDecoder,
    CollisionAnalyzer,
    DtwClassifier,
    DualReceiverController,
    PassiveLink,
    ReceiverPipeline,
)
from .engine import (
    BatchRunner,
    ResultCache,
    RunRecord,
    ScenarioSpec,
    expand_grid,
)
from .hardware import (
    EvaluationBoard,
    FovCap,
    LedReceiver,
    PdGain,
    Photodiode,
    ReceiverFrontEnd,
)
from .scenarios import ScenarioFamily, compose, expand_family, family_names
from .optics import (
    ALUMINUM_TAPE,
    BLACK_NAPKIN,
    FieldOfView,
    FluorescentCeiling,
    LedLamp,
    Material,
    Sun,
)
from .tags import Packet, TagSurface

__version__ = "1.6.0"

__all__ = [
    "__version__",
    # channel
    "ChannelSimulator", "ConstantSpeed", "MovingObject", "PassiveScene",
    "SignalTrace", "SimulatorConfig",
    # core
    "AdaptiveThresholdDecoder", "CollisionAnalyzer", "DtwClassifier",
    "DualReceiverController", "PassiveLink", "ReceiverPipeline",
    # engine
    "BatchRunner", "ResultCache", "RunRecord", "ScenarioSpec",
    "expand_grid",
    # scenarios
    "ScenarioFamily", "compose", "expand_family", "family_names",
    # hardware
    "EvaluationBoard", "FovCap", "LedReceiver", "PdGain", "Photodiode",
    "ReceiverFrontEnd",
    # optics
    "ALUMINUM_TAPE", "BLACK_NAPKIN", "FieldOfView", "FluorescentCeiling",
    "LedLamp", "Material", "Sun",
    # tags
    "Packet", "TagSurface",
]
