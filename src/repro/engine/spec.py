"""Declarative scenario descriptions and grid expansion.

A :class:`ScenarioSpec` captures everything the simulation stack needs
to run one pass — source, geometry, tag payload, receiver chain, motion,
noise and decoder — as plain data.  Plain data means scenarios can be
hashed (for the result cache), pickled (for the worker pool), serialized
to JSON (for the CLI) and fanned out over parameter grids without
touching any simulator object.

:func:`expand_grid` is the matrix expander: it takes a template spec and
a mapping of field name -> values and produces the Cartesian product as
concrete specs, in deterministic order.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import math
from dataclasses import dataclass
from typing import Any, Mapping, NamedTuple, Sequence

from ..faults.plan import FaultPlan

__all__ = ["ScenarioSpec", "SpecIdentity", "GridSpec", "derive_seed",
           "expand_grid", "grid_size", "MOTIONS", "TOPOLOGIES"]


def derive_seed(token: str) -> int:
    """Deterministic 31-bit seed from arbitrary token text.

    The one derivation rule (blake2b, 4-byte digest, modulo
    ``2**31 - 1``) shared by per-spec seeds and per-receiver-node
    seeds, so the convention cannot silently diverge.
    """
    digest = hashlib.blake2b(token.encode(), digest_size=4).digest()
    return int.from_bytes(digest, "big") % (2**31 - 1)


#: Recognised ambient sources.
SOURCES = ("led_lamp", "sun", "fluorescent")

#: Recognised detector families.
DETECTORS = ("pd", "led")

#: Photodiode gain settings (mirrors :class:`repro.hardware.PdGain`).
PD_GAINS = ("G1", "G2", "G3")

#: Recognised decoding strategies.
DECODERS = ("adaptive", "two_phase")

#: Vehicle profiles a tag can ride on (``None`` = bare tag).
CARS = ("volvo_v40", "bmw_3_series")

#: Recognised motion profiles (see :mod:`repro.channel.mobility`).
MOTIONS = ("constant", "speed_doubling", "speed_jitter")

#: Receiver-network connectivity topologies (``n_receivers > 1``):
#: ``full`` links every pair, ``chain`` only consecutive nodes, and
#: ``partitioned`` splits the array into two disjoint full meshes.
TOPOLOGIES = ("full", "chain", "partitioned")


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-described channel scenario, as data.

    Attributes:
        bits: payload bit string (e.g. ``"10"``).
        symbol_width_m: physical strip width of one symbol.
        receiver_height_m: receiver height above the tag plane.
        speed_mps: constant pass speed of the moving object.
        source: ambient source kind (``led_lamp``/``sun``/``fluorescent``).
        lamp_intensity_cd: LED lamp on-axis intensity (``led_lamp``).
        lamp_offset_m: horizontal lamp-receiver distance (``led_lamp``).
        ground_lux: scene noise floor (``sun``/``fluorescent``).
        fluorescent_height_m: luminaire height (``fluorescent``).
        detector: ``pd`` (OPT101) or ``led`` (RX-LED).
        pd_gain: OPT101 gain setting (``pd`` only).
        cap: mount the paper's FoV cap on the detector.
        ground: material name of the uncovered plane.
        car: carry the tag on this vehicle's roof (``None``: bare tag).
        dirt: tag degradation factor in [0, 1] (bare tags only).
        visibility_m: meteorological visibility; ``None`` = clear air.
        start_position_m: leading-edge start; ``None`` picks the
            standard upstream margin ``-(0.6 h + 3 w)``.
        sample_rate_hz: RSS sampling rate; ``None`` targets ~40 samples
            per symbol clamped to [200, 2000] Hz.
        motion: motion profile — ``constant`` speed, ``speed_doubling``
            (the Fig. 8 distortion: speed doubles when the packet
            midpoint passes the receiver) or ``speed_jitter`` (smooth
            random wander around the nominal speed).
        motion_param: profile parameter; for ``speed_jitter`` the
            relative speed deviation in [0, 0.9], must stay 0.0
            otherwise.
        decoder: ``adaptive`` thresholds or the ``two_phase`` car
            decoder (long preamble first).
        threshold_rule: adaptive-decoder thresholding variant.
        n_receivers: number of deployed receiver nodes observing the
            pass.  1 (default) is the single-receiver pipeline; above 1
            the engine builds a :class:`repro.net.ReceiverNetwork` of
            nodes spaced along the track, each capturing its own trace
            of the same pass, and records fused/tracked verdicts (the
            Section 6 networked-receivers setup).
        receiver_spacing_m: gap between consecutive nodes along the
            motion axis (``n_receivers > 1``).
        topology: connectivity between nodes — ``full``, ``chain`` or
            ``partitioned`` (two disjoint full meshes).
        stream_chunk: samples per ingest chunk when the scenario runs
            through the online streaming runtime (:mod:`repro.stream`).
            0 (default) decodes offline; > 0 replays the captured pass
            chunk-by-chunk through a streaming decoder and records
            decode latencies on the run record.  The final verdict is
            byte-identical to the offline decode either way (the
            streaming parity guarantee), and the physical pass is
            unchanged, so streaming fields do **not** perturb the
            derived noise seed — only the cache identity.
        stream_feed_hz: intended live feed pacing in chunks/second for
            session replay (0 = as fast as possible).  Pacing changes
            wall-clock behaviour only, never the decode, so the batch
            executor ignores it; the session layer
            (``repro-engine stream``) honours it.  Independent of
            ``stream_chunk``: the session layer chunks with its own
            ``--chunk`` flag, so pacing is valid on its own.
        include_noise: disable for noiseless optical truth.
        seed: noise seed; ``None`` derives a deterministic seed from the
            spec content, so every grid point gets its own stable seed.
        fault_plan: optional :class:`~repro.faults.FaultPlan` describing
            deterministic corruption injected into the captured pass,
            its chunk transport, and its receiver nodes.  ``None``
            (default) runs fault-free and serializes identically to a
            spec predating the field.  Like the streaming knobs, the
            plan does **not** perturb the derived noise seed — faults
            corrupt the capture of the same physical pass — but it does
            change the cache identity.
    """

    bits: str = "10"
    symbol_width_m: float = 0.05
    receiver_height_m: float = 0.2
    speed_mps: float = 0.08
    source: str = "led_lamp"
    lamp_intensity_cd: float = 2.0
    lamp_offset_m: float = 0.12
    ground_lux: float = 6200.0
    fluorescent_height_m: float = 2.3
    detector: str = "pd"
    pd_gain: str = "G1"
    cap: bool = True
    ground: str = "black_paper_ground"
    car: str | None = None
    dirt: float = 0.0
    visibility_m: float | None = None
    start_position_m: float | None = None
    sample_rate_hz: float | None = None
    motion: str = "constant"
    motion_param: float = 0.0
    decoder: str = "adaptive"
    threshold_rule: str = "midpoint"
    n_receivers: int = 1
    receiver_spacing_m: float = 0.6
    topology: str = "full"
    stream_chunk: int = 0
    stream_feed_hz: float = 0.0
    include_noise: bool = True
    seed: int | None = None
    fault_plan: FaultPlan | None = None

    def __post_init__(self) -> None:
        if isinstance(self.fault_plan, Mapping):
            object.__setattr__(self, "fault_plan",
                               FaultPlan.from_dict(self.fault_plan))
        if self.fault_plan is not None and not isinstance(self.fault_plan,
                                                          FaultPlan):
            raise ValueError(f"fault_plan must be a FaultPlan, a mapping or "
                             f"None, got {self.fault_plan!r}")
        if self.fault_plan is not None and self.fault_plan.empty:
            # An all-off plan is behaviourally identical to no plan;
            # normalizing keeps the content hash (and therefore the
            # cache key and record bytes) identical too — the "empty
            # plan == today's output" contract, made literal.
            object.__setattr__(self, "fault_plan", None)
        if not self.bits or any(c not in "01" for c in self.bits):
            raise ValueError(f"bits must be a non-empty 0/1 string, "
                             f"got {self.bits!r}")
        for name in ("symbol_width_m", "receiver_height_m", "speed_mps",
                     "lamp_intensity_cd", "ground_lux",
                     "fluorescent_height_m"):
            if getattr(self, name) <= 0.0:
                raise ValueError(f"{name} must be positive, "
                                 f"got {getattr(self, name)}")
        if self.source not in SOURCES:
            raise ValueError(f"source must be one of {SOURCES}, "
                             f"got {self.source!r}")
        if self.detector not in DETECTORS:
            raise ValueError(f"detector must be one of {DETECTORS}, "
                             f"got {self.detector!r}")
        if self.pd_gain not in PD_GAINS:
            raise ValueError(f"pd_gain must be one of {PD_GAINS}, "
                             f"got {self.pd_gain!r}")
        if self.decoder not in DECODERS:
            raise ValueError(f"decoder must be one of {DECODERS}, "
                             f"got {self.decoder!r}")
        if self.car is not None and self.car not in CARS:
            raise ValueError(f"car must be one of {CARS} or None, "
                             f"got {self.car!r}")
        if not 0.0 <= self.dirt <= 1.0:
            raise ValueError(f"dirt must be in [0, 1], got {self.dirt}")
        if self.dirt > 0.0 and self.car is not None:
            raise ValueError("dirt degradation applies to bare tags only")
        if self.visibility_m is not None and self.visibility_m <= 0.0:
            raise ValueError("visibility must be positive")
        if self.sample_rate_hz is not None and self.sample_rate_hz <= 0.0:
            raise ValueError("sample rate must be positive")
        if self.motion not in MOTIONS:
            raise ValueError(f"motion must be one of {MOTIONS}, "
                             f"got {self.motion!r}")
        if self.motion == "speed_jitter":
            if not 0.0 <= self.motion_param <= 0.9:
                raise ValueError("speed_jitter deviation must be in "
                                 f"[0, 0.9], got {self.motion_param}")
        elif self.motion_param != 0.0:
            raise ValueError(f"motion_param applies to speed_jitter only, "
                             f"got {self.motion_param} for {self.motion!r}")
        if not isinstance(self.n_receivers, int) or self.n_receivers < 1:
            raise ValueError(f"n_receivers must be an integer >= 1, "
                             f"got {self.n_receivers!r}")
        if self.receiver_spacing_m <= 0.0:
            raise ValueError(f"receiver_spacing_m must be positive, "
                             f"got {self.receiver_spacing_m}")
        if self.topology not in TOPOLOGIES:
            raise ValueError(f"topology must be one of {TOPOLOGIES}, "
                             f"got {self.topology!r}")
        if not isinstance(self.stream_chunk, int) or self.stream_chunk < 0:
            raise ValueError(f"stream_chunk must be an integer >= 0, "
                             f"got {self.stream_chunk!r}")
        if self.stream_feed_hz < 0.0:
            raise ValueError(f"stream_feed_hz must be >= 0, "
                             f"got {self.stream_feed_hz}")
        if self.stream_chunk > 0 and self.n_receivers > 1:
            raise ValueError(
                "streaming replay (stream_chunk > 0) applies to "
                "single-receiver scenarios; multi-receiver streams go "
                "through the session layer (repro-engine stream)")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def auto_sample_rate_hz(self) -> float:
        """~40 samples per symbol, clamped to [200, 2000] Hz."""
        rate = 40.0 * self.speed_mps / self.symbol_width_m
        return float(min(2000.0, max(200.0, rate)))

    def auto_start_position_m(self) -> float:
        """Standard upstream start: quiet baseline before the packet."""
        return -(0.6 * self.receiver_height_m + 3.0 * self.symbol_width_m)

    def resolve(self) -> "ScenarioSpec":
        """Fill every ``None``/auto field with its concrete value.

        Resolution is idempotent and happens before hashing, so a
        template with ``sample_rate_hz=None`` and one spelling the same
        rate explicitly share a cache entry.
        """
        updates: dict[str, Any] = {}
        if self.sample_rate_hz is None:
            updates["sample_rate_hz"] = self.auto_sample_rate_hz()
        if self.start_position_m is None:
            updates["start_position_m"] = self.auto_start_position_m()
        spec = self.replace(**updates) if updates else self
        if spec.seed is None:
            spec = spec.replace(seed=spec.derived_seed())
        return spec

    def derived_seed(self) -> int:
        """Deterministic per-scenario seed from the spec content.

        Hashes the auto-resolved payload minus the seed field itself,
        so the derivation is stable under resolution and a spec
        spelling an auto value explicitly seeds identically to the
        auto form.  The streaming replay knobs (``stream_chunk``,
        ``stream_feed_hz``) are excluded too: they change how the
        captured pass is *fed to the decoder*, not the physical pass,
        so a streamed scenario must see exactly the offline scenario's
        noise.  ``fault_plan`` is excluded for the same reason: faults
        corrupt the capture and transport of the pass, never its
        physics, so a chaos sweep measures degradation on exactly the
        passes the clean run decoded.  Every other field perturbs the
        seed, giving each grid point independent noise.
        """
        payload = self.to_dict()
        payload.pop("seed")
        payload.pop("stream_chunk")
        payload.pop("stream_feed_hz")
        payload.pop("fault_plan", None)
        if payload["sample_rate_hz"] is None:
            payload["sample_rate_hz"] = self.auto_sample_rate_hz()
        if payload["start_position_m"] is None:
            payload["start_position_m"] = self.auto_start_position_m()
        return derive_seed(json.dumps(payload, sort_keys=True))

    # ------------------------------------------------------------------
    # Serialization and identity
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-safe).

        Every field but ``fault_plan`` is a flat scalar, so a direct
        dict build produces exactly ``dataclasses.asdict(self)``
        without its recursive deep-copy walk — this sits on the batch
        executor's per-record hot path.  ``fault_plan`` is emitted as
        a nested dict and **omitted entirely when unset**, so fault-free
        specs keep the exact serialized form (and hashes) they had
        before the field existed.
        """
        data = {name: getattr(self, name) for name in _FIELD_NAMES}
        if self.fault_plan is not None:
            data["fault_plan"] = self.fault_plan.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Inverse of :meth:`to_dict`; rejects unknown fields."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown spec fields: {sorted(unknown)}")
        return cls(**dict(data))

    def replace(self, **updates: Any) -> "ScenarioSpec":
        """Copy with fields changed (validation re-runs)."""
        known = {f.name for f in dataclasses.fields(self)}
        unknown = set(updates) - known
        if unknown:
            raise ValueError(f"unknown spec fields: {sorted(unknown)}")
        return dataclasses.replace(self, **updates)

    def canonical_json(self) -> str:
        """Stable JSON encoding used for hashing and cache keys."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def content_hash(self) -> str:
        """SHA-256 over the resolved spec — the cache key."""
        resolved = self.resolve()
        return hashlib.sha256(resolved.canonical_json().encode()).hexdigest()

    def identity(self) -> "SpecIdentity":
        """Resolve once, serialize once, hash once.

        The single derivation of (payload, canonical JSON, content
        hash) shared by the serial executor and the tensor batch path
        — each value is computed exactly once, so per-record hot loops
        never re-resolve or re-serialize.
        """
        resolved = self.resolve()
        payload = resolved.to_dict()
        canonical = json.dumps(payload, sort_keys=True,
                               separators=(",", ":"))
        return SpecIdentity(
            payload=payload,
            canonical_json=canonical,
            content_hash=hashlib.sha256(canonical.encode()).hexdigest())

    def optical_key(self, identity: "SpecIdentity | None" = None) -> str:
        """Grouping key: the resolved spec minus the noise seed.

        Two specs with the same key share every seed-independent
        physics stage, which is what lets the tensor backend batch
        them.  ``speed_jitter`` motion consumes the seed inside the
        scene itself (the wander profile), so those specs keep their
        seed in the key and only group with exact duplicates.

        Args:
            identity: this spec's precomputed :meth:`identity`, when
                the caller already has it (the batch path derives both
                per spec).
        """
        ident = self.identity() if identity is None else identity
        if ident.payload["motion"] == "speed_jitter":
            return ident.canonical_json
        # Zero the seed in the already-serialised string: keys are
        # unique in the canonical JSON and no field value can contain
        # ``"seed":``, so this single substitution equals
        # re-serialising ``{**payload, "seed": 0}``.
        return ident.canonical_json.replace(
            f'"seed":{ident.payload["seed"]}', '"seed":0', 1)


#: Scalar field names in declaration order, resolved once for the
#: :meth:`ScenarioSpec.to_dict` fast path (``fault_plan`` is handled
#: separately: nested, and omitted when ``None``).
_FIELD_NAMES = tuple(f.name for f in dataclasses.fields(ScenarioSpec)
                     if f.name != "fault_plan")


class SpecIdentity(NamedTuple):
    """One spec's resolved identity, derived in a single pass.

    Attributes:
        payload: the resolved spec as a plain dict
            (:meth:`ScenarioSpec.to_dict`).
        canonical_json: byte-stable serialization of ``payload``.
        content_hash: SHA-256 of ``canonical_json`` — the cache key.
    """

    payload: dict[str, Any]
    canonical_json: str
    content_hash: str


# ----------------------------------------------------------------------
# Grid expansion
# ----------------------------------------------------------------------

def grid_size(axes: Mapping[str, Sequence[Any]]) -> int:
    """Number of scenarios a grid expands to."""
    return math.prod(len(values) for values in axes.values()) if axes else 1


def expand_grid(template: ScenarioSpec,
                axes: Mapping[str, Sequence[Any]]) -> list[ScenarioSpec]:
    """Fan a template out over the Cartesian product of axis values.

    Args:
        template: base spec supplying every non-swept field.
        axes: field name -> sequence of values.  Order is significant:
            the last axis varies fastest (row-major), so results line up
            with ``itertools.product`` of the values.

    Returns:
        ``prod(len(v))`` concrete specs, deterministic order.
    """
    field_names = {f.name for f in dataclasses.fields(ScenarioSpec)}
    for name, values in axes.items():
        if name not in field_names:
            raise ValueError(f"unknown spec field in grid axis: {name!r}")
        if len(values) == 0:
            raise ValueError(f"grid axis {name!r} has no values")
    names = list(axes)
    specs = []
    for combo in itertools.product(*(axes[n] for n in names)):
        specs.append(template.replace(**dict(zip(names, combo))))
    return specs


@dataclass(frozen=True)
class GridSpec:
    """A template + axes pair, the JSON form the CLI consumes.

    Example document::

        {"template": {"source": "sun", "detector": "led", "cap": false},
         "axes": {"ground_lux": [100, 450, 3700],
                  "seed": [2, 3, 4, 5, 6]}}
    """

    template: ScenarioSpec
    axes: dict[str, list[Any]]

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "GridSpec":
        template = ScenarioSpec.from_dict(data.get("template", {}))
        axes = {str(k): list(v) for k, v in data.get("axes", {}).items()}
        return cls(template=template, axes=axes)

    def expand(self) -> list[ScenarioSpec]:
        """The concrete scenario list."""
        return expand_grid(self.template, self.axes)

    def size(self) -> int:
        """Scenario count without expanding."""
        return grid_size(self.axes)
