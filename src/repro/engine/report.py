"""Aggregation and reporting over run records.

Sweeps produce flat record lists; consumers almost always want rates
grouped by one spec axis (decode rate vs noise floor, vs height, ...).
These helpers work on any iterable of :class:`RunRecord` — fresh from a
:class:`BatchRunner`, or re-read from a results file — because records
embed their originating spec.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Any, Iterable, Sequence

from .records import STAGES, RunRecord

__all__ = ["success_rate", "success_rate_by", "stage_counts",
           "mean_ber", "summarize", "group_table"]


def success_rate(records: Sequence[RunRecord]) -> float:
    """Fraction of records that decoded the exact payload."""
    if not records:
        return 0.0
    return sum(r.success for r in records) / len(records)


def success_rate_by(records: Iterable[RunRecord],
                    axis: str) -> dict[Any, float]:
    """Decode rate grouped by one spec field, in first-seen order.

    Args:
        records: any run records (their specs must carry ``axis``).
        axis: spec field name to group on, e.g. ``"ground_lux"``.
    """
    groups: dict[Any, list[RunRecord]] = defaultdict(list)
    for record in records:
        if axis not in record.spec:
            raise KeyError(f"record spec has no field {axis!r}")
        groups[record.spec[axis]].append(record)
    return {value: success_rate(group) for value, group in groups.items()}


def stage_counts(records: Iterable[RunRecord]) -> dict[str, int]:
    """How many records ended in each pipeline stage."""
    counts = Counter(r.stage for r in records)
    return {stage: counts.get(stage, 0) for stage in STAGES
            if counts.get(stage, 0)}


def mean_ber(records: Sequence[RunRecord]) -> float:
    """Average bit error rate across records (1.0 = nothing decoded)."""
    if not records:
        return 0.0
    return sum(r.ber for r in records) / len(records)


def summarize(records: Sequence[RunRecord]) -> str:
    """Multi-line human summary of a record set."""
    lines = [f"scenarios: {len(records)}"]
    if not records:
        return lines[0]
    lines.append(f"decoded exactly: {sum(r.success for r in records)} "
                 f"({100.0 * success_rate(records):.1f}%)")
    lines.append(f"mean BER: {mean_ber(records):.3f}")
    for stage, count in stage_counts(records).items():
        lines.append(f"  stage {stage}: {count}")
    sim_time = sum(r.trace_duration_s for r in records)
    wall = sum(r.elapsed_s for r in records)
    lines.append(f"simulated {sim_time:.1f} s of channel time in "
                 f"{wall:.1f} s of compute")
    return "\n".join(lines)


def group_table(records: Sequence[RunRecord], axis: str) -> str:
    """ASCII decode-rate table grouped by one spec axis."""
    rates = success_rate_by(records, axis)
    width = max((len(str(v)) for v in rates), default=1)
    lines = [f"decode rate by {axis}"]
    for value, rate in rates.items():
        bar = "#" * int(round(30 * rate))
        lines.append(f"  {value!s:>{width}} | {bar} {rate:.2f}")
    return "\n".join(lines)
