"""Aggregation and reporting over run records.

Sweeps produce flat record lists; consumers almost always want rates
grouped by one spec axis (decode rate vs noise floor, vs height, ...).
These helpers work on any iterable of :class:`RunRecord` — fresh from a
:class:`BatchRunner`, or re-read from a results file — because records
embed their originating spec.
"""

from __future__ import annotations

import dataclasses
from collections import Counter, defaultdict
from typing import Any, Iterable, Sequence

from .records import STAGES, RunRecord
from .spec import ScenarioSpec

#: Spec-field defaults, used to group records written before a field
#: existed (e.g. pre-receiver-array records have no ``n_receivers``
#: key; semantically they ran with the default, 1).
_SPEC_DEFAULTS = {f.name: f.default for f in dataclasses.fields(ScenarioSpec)
                  if f.default is not dataclasses.MISSING}

__all__ = ["success_rate", "success_rate_by", "stage_counts",
           "mean_ber", "fusion_stats", "summarize", "group_table",
           "fusion_table"]


def success_rate(records: Sequence[RunRecord]) -> float:
    """Fraction of records that decoded the exact payload."""
    if not records:
        return 0.0
    return sum(r.success for r in records) / len(records)


def _group_by_axis(records: Iterable[RunRecord],
                   axis: str) -> dict[Any, list[RunRecord]]:
    """Records grouped by one spec field, in first-seen order.

    A record whose (older) embedded spec predates the field falls back
    to the spec default, so mixed-vintage result files still group;
    a field the spec never had raises ``KeyError``.
    """
    groups: dict[Any, list[RunRecord]] = defaultdict(list)
    for record in records:
        if axis in record.spec:
            value = record.spec[axis]
        elif axis in _SPEC_DEFAULTS:
            value = _SPEC_DEFAULTS[axis]
        else:
            raise KeyError(f"record spec has no field {axis!r}")
        groups[value].append(record)
    return groups


def success_rate_by(records: Iterable[RunRecord],
                    axis: str) -> dict[Any, float]:
    """Decode rate grouped by one spec field, in first-seen order.

    Args:
        records: any run records (their specs must carry ``axis``).
        axis: spec field name to group on, e.g. ``"ground_lux"``.
    """
    return {value: success_rate(group)
            for value, group in _group_by_axis(records, axis).items()}


def stage_counts(records: Iterable[RunRecord]) -> dict[str, int]:
    """How many records ended in each pipeline stage."""
    counts = Counter(r.stage for r in records)
    return {stage: counts.get(stage, 0) for stage in STAGES
            if counts.get(stage, 0)}


def mean_ber(records: Sequence[RunRecord]) -> float:
    """Average bit error rate across records (1.0 = nothing decoded)."""
    if not records:
        return 0.0
    return sum(r.ber for r in records) / len(records)


def fusion_stats(records: Sequence[RunRecord]) -> dict[str, Any]:
    """Network-fusion aggregates over a record set.

    Returns:
        ``fused_rate`` (fused decode rate), ``best_node_rate`` (rate at
        which at least one single node decoded), ``mean_fusion_gain``
        (average per-pass fused-vs-best-single win) and
        ``mean_speed_error`` (mean relative tracked-speed error over
        records with an estimate; ``None`` when no record has one —
        no estimate is not the same as a perfect one).
    """
    if not records:
        return {"fused_rate": 0.0, "best_node_rate": 0.0,
                "mean_fusion_gain": 0.0, "mean_speed_error": None}
    n = len(records)
    speed_errors = [r.speed_error for r in records
                    if r.speed_error is not None]
    return {
        "fused_rate": sum(r.fused_success for r in records) / n,
        "best_node_rate": sum(r.best_node_success for r in records) / n,
        "mean_fusion_gain": sum(r.fusion_gain for r in records) / n,
        "mean_speed_error": (sum(speed_errors) / len(speed_errors)
                             if speed_errors else None),
    }


def summarize(records: Sequence[RunRecord]) -> str:
    """Multi-line human summary of a record set."""
    lines = [f"scenarios: {len(records)}"]
    if not records:
        return lines[0]
    lines.append(f"decoded exactly: {sum(r.success for r in records)} "
                 f"({100.0 * success_rate(records):.1f}%)")
    lines.append(f"mean BER: {mean_ber(records):.3f}")
    for stage, count in stage_counts(records).items():
        lines.append(f"  stage {stage}: {count}")
    networked = [r for r in records if r.networked]
    if networked:
        stats = fusion_stats(networked)
        err = stats["mean_speed_error"]
        lines.append(f"networked passes: {len(networked)} "
                     f"(fused {100.0 * stats['fused_rate']:.1f}% | "
                     f"best single node "
                     f"{100.0 * stats['best_node_rate']:.1f}% | "
                     f"fusion gain {stats['mean_fusion_gain']:+.3f} | "
                     f"speed err "
                     f"{'n/a' if err is None else f'{100.0 * err:.1f}%'})")
    sim_time = sum(r.trace_duration_s for r in records)
    wall = sum(r.elapsed_s for r in records)
    lines.append(f"simulated {sim_time:.1f} s of channel time in "
                 f"{wall:.1f} s of compute")
    return "\n".join(lines)


def group_table(records: Sequence[RunRecord], axis: str) -> str:
    """ASCII decode-rate table grouped by one spec axis."""
    rates = success_rate_by(records, axis)
    width = max((len(str(v)) for v in rates), default=1)
    lines = [f"decode rate by {axis}"]
    for value, rate in rates.items():
        bar = "#" * int(round(30 * rate))
        lines.append(f"  {value!s:>{width}} | {bar} {rate:.2f}")
    return "\n".join(lines)


def fusion_table(records: Sequence[RunRecord],
                 axis: str = "n_receivers") -> str:
    """Fusion columns grouped by one spec axis.

    One row per axis value: fused decode rate, best-single-node decode
    rate, mean per-pass fusion gain (a vote-efficiency check, <= 0 by
    construction — see :class:`RunRecord`; the Section 6 *improvement*
    is the fused-rate column read across ``n_receivers``) and mean
    relative speed-estimate error ('-' when no pass produced one).
    """
    groups = _group_by_axis(records, axis)
    width = max((len(str(v)) for v in groups), default=1)
    lines = [f"fusion by {axis}   (fused | best node | gain | speed err)"]
    for value, group in groups.items():
        stats = fusion_stats(group)
        err = stats["mean_speed_error"]
        lines.append(
            f"  {value!s:>{width}} | {stats['fused_rate']:.2f} | "
            f"{stats['best_node_rate']:.2f} | "
            f"{stats['mean_fusion_gain']:+.3f} | "
            f"{'-' if err is None else f'{err:.3f}'}")
    return "\n".join(lines)
