"""Aggregation and reporting over run records.

Sweeps produce flat record lists; consumers almost always want rates
grouped by one spec axis (decode rate vs noise floor, vs height, ...).
These helpers work on any iterable of :class:`RunRecord` — fresh from a
:class:`BatchRunner`, or re-read from a results file — because records
embed their originating spec.
"""

from __future__ import annotations

import dataclasses
from collections import Counter, defaultdict
from typing import Any, Iterable, Sequence

import numpy as np

from ..exec.graph import PIPELINE_STAGES
from .records import STAGES, RecordStage, RunRecord
from .spec import ScenarioSpec

#: Spec-field defaults, used to group records written before a field
#: existed (e.g. pre-receiver-array records have no ``n_receivers``
#: key; semantically they ran with the default, 1).
_SPEC_DEFAULTS = {f.name: f.default for f in dataclasses.fields(ScenarioSpec)
                  if f.default is not dataclasses.MISSING}

__all__ = ["success_rate", "success_rate_by", "stage_counts",
           "mean_ber", "format_ms", "fusion_stats", "latency_stats",
           "robustness_stats", "stage_stats", "summarize",
           "group_table", "fusion_table", "latency_table",
           "robustness_table", "stage_table"]


def format_ms(value: float | None, null: str = "-") -> str:
    """Seconds as a milliseconds string, ``null`` for missing values."""
    return null if value is None else f"{value * 1e3:.1f}"


def success_rate(records: Sequence[RunRecord]) -> float:
    """Fraction of records that decoded the exact payload."""
    if not records:
        return 0.0
    return sum(r.success for r in records) / len(records)


def _group_by_axis(records: Iterable[RunRecord],
                   axis: str) -> dict[Any, list[RunRecord]]:
    """Records grouped by one spec field, in first-seen order.

    A record whose (older) embedded spec predates the field falls back
    to the spec default, so mixed-vintage result files still group;
    a field the spec never had raises ``KeyError``.
    """
    groups: dict[Any, list[RunRecord]] = defaultdict(list)
    for record in records:
        if axis in record.spec:
            value = record.spec[axis]
        elif axis in _SPEC_DEFAULTS:
            value = _SPEC_DEFAULTS[axis]
        else:
            raise KeyError(f"record spec has no field {axis!r}")
        groups[value].append(record)
    return groups


def success_rate_by(records: Iterable[RunRecord],
                    axis: str) -> dict[Any, float]:
    """Decode rate grouped by one spec field, in first-seen order.

    Args:
        records: any run records (their specs must carry ``axis``).
        axis: spec field name to group on, e.g. ``"ground_lux"``.
    """
    return {value: success_rate(group)
            for value, group in _group_by_axis(records, axis).items()}


def stage_counts(records: Iterable[RunRecord]) -> dict[str, int]:
    """How many records ended in each pipeline stage."""
    counts = Counter(r.stage for r in records)
    return {stage: counts.get(stage, 0) for stage in STAGES
            if counts.get(stage, 0)}


def mean_ber(records: Sequence[RunRecord]) -> float:
    """Average bit error rate across records (1.0 = nothing decoded)."""
    if not records:
        return 0.0
    return sum(r.ber for r in records) / len(records)


def fusion_stats(records: Sequence[RunRecord]) -> dict[str, Any]:
    """Network-fusion aggregates over a record set.

    Returns:
        ``fused_rate`` (fused decode rate), ``best_node_rate`` (rate at
        which at least one single node decoded), ``mean_fusion_gain``
        (average per-pass fused-vs-best-single win) and
        ``mean_speed_error`` (mean relative tracked-speed error over
        records with an estimate; ``None`` when no record has one —
        no estimate is not the same as a perfect one).
    """
    if not records:
        return {"fused_rate": 0.0, "best_node_rate": 0.0,
                "mean_fusion_gain": 0.0, "mean_speed_error": None}
    n = len(records)
    speed_errors = [r.speed_error for r in records
                    if r.speed_error is not None]
    return {
        "fused_rate": sum(r.fused_success for r in records) / n,
        "best_node_rate": sum(r.best_node_success for r in records) / n,
        "mean_fusion_gain": sum(r.fusion_gain for r in records) / n,
        "mean_speed_error": (sum(speed_errors) / len(speed_errors)
                             if speed_errors else None),
    }


def _percentile(values: Sequence[float], p: float) -> float:
    """Linear-interpolated percentile of a non-empty value list."""
    return float(np.percentile(values, p))


def latency_stats(records: Sequence[RunRecord]) -> dict[str, Any]:
    """Streaming-latency aggregates over the streamed records.

    Returns:
        ``n_streamed`` (records that ran through the online runtime),
        ``detect_rate`` (fraction whose incremental detector locked on
        and produced an onset event), and p50/p95 of each sample-clock
        latency over the records that have it (None when none do).
    """
    streamed = [r for r in records if r.streamed]
    out: dict[str, Any] = {
        "n_streamed": len(streamed),
        "detect_rate": 0.0,
    }
    if streamed:
        detected = [r for r in streamed if r.onset_latency_s is not None]
        out["detect_rate"] = len(detected) / len(streamed)
    for name in ("onset_latency_s", "first_bit_latency_s",
                 "verdict_latency_s"):
        values = [getattr(r, name) for r in streamed
                  if getattr(r, name) is not None]
        key = name.removesuffix("_latency_s")
        out[f"{key}_p50_s"] = (_percentile(values, 50.0) if values
                               else None)
        out[f"{key}_p95_s"] = (_percentile(values, 95.0) if values
                               else None)
    return out


def latency_table(records: Sequence[RunRecord], axis: str) -> str:
    """Streaming-latency columns grouped by one spec axis.

    One row per axis value: streamed count, detect rate, onset p50/p95
    and first-bit p50, in milliseconds ('-' where no record measured
    the quantity).
    """
    groups = _group_by_axis(records, axis)
    width = max((len(str(v)) for v in groups), default=1)
    lines = [f"stream latency by {axis}   "
             "(n | detect | onset p50/p95 ms | first-bit p50 ms)"]
    for value, group in groups.items():
        stats = latency_stats(group)
        lines.append(
            f"  {value!s:>{width}} | {stats['n_streamed']} | "
            f"{stats['detect_rate']:.2f} | "
            f"{format_ms(stats['onset_p50_s'])}"
            f"/{format_ms(stats['onset_p95_s'])} | "
            f"{format_ms(stats['first_bit_p50_s'])}")
    return "\n".join(lines)


def robustness_stats(records: Sequence[RunRecord]) -> dict[str, Any]:
    """Fault-injection and failure aggregates over a record set.

    Returns:
        ``n_faulted`` (records whose run logged at least one injected
        fault event), ``executor_errors`` (records that died outside
        the physics — crashed or quarantined workers), ``fault_events``
        (summed per-kind injected-fault counters), ``faulted_rate`` /
        ``clean_rate`` (decode rate over the faulted / un-faulted
        subsets; ``None`` when a subset is empty) and ``degradation``
        (clean minus faulted rate, ``None`` unless both sides exist).
    """
    faulted = [r for r in records if r.faulted]
    clean = [r for r in records if not r.faulted]
    events: Counter[str] = Counter()
    for record in records:
        events.update(record.fault_events)
    faulted_rate = success_rate(faulted) if faulted else None
    clean_rate = success_rate(clean) if clean else None
    return {
        "n_faulted": len(faulted),
        "executor_errors": sum(r.stage == RecordStage.EXECUTOR_ERROR
                               for r in records),
        "fault_events": dict(sorted(events.items())),
        "faulted_rate": faulted_rate,
        "clean_rate": clean_rate,
        "degradation": (clean_rate - faulted_rate
                        if faulted_rate is not None
                        and clean_rate is not None else None),
    }


def robustness_table(records: Sequence[RunRecord], axis: str) -> str:
    """Robustness columns grouped by one spec axis.

    One row per axis value: record count, how many logged injected
    faults, decode rate, executor-error count and total injected fault
    events.  Read decode rate down the axis (e.g. fault intensity) to
    see the degradation curve.
    """
    groups = _group_by_axis(records, axis)
    width = max((len(str(v)) for v in groups), default=1)
    lines = [f"robustness by {axis}   "
             "(n | faulted | decode | exec err | fault events)"]
    for value, group in groups.items():
        stats = robustness_stats(group)
        n_events = sum(stats["fault_events"].values())
        lines.append(
            f"  {value!s:>{width}} | {len(group)} | "
            f"{stats['n_faulted']} | {success_rate(group):.2f} | "
            f"{stats['executor_errors']} | {n_events}")
    return "\n".join(lines)


def stage_stats(records: Sequence[RunRecord]) -> dict[str, Any]:
    """Per-stage wall-time aggregates over the profiled records.

    Only records carrying a :class:`~repro.exec.graph.StageTrace`
    (a profiled run: ``--profile`` or ``REPRO_EXEC_PROFILE=1``)
    contribute.  Stages appear in pipeline order.

    Returns:
        ``n_profiled`` (records with a trace), ``total_s`` (summed
        stage time across them), ``stages`` (per-stage ``total_s`` /
        ``mean_s`` per profiled record / ``share`` of the total) and
        ``counters`` (summed stage-graph counters, sorted by name).
    """
    traces = [r.stage_trace for r in records if r.stage_trace is not None]
    timings: dict[str, float] = {}
    counters: Counter[str] = Counter()
    for trace in traces:
        for name, seconds in trace.timings_s.items():
            timings[name] = timings.get(name, 0.0) + seconds
        counters.update(trace.counters)
    total = sum(timings.values())
    stages = {
        name: {
            "total_s": timings[name],
            "mean_s": timings[name] / len(traces),
            "share": timings[name] / total if total > 0.0 else 0.0,
        }
        for name in PIPELINE_STAGES if name in timings
    }
    return {"n_profiled": len(traces), "total_s": total,
            "stages": stages, "counters": dict(sorted(counters.items()))}


def stage_table(records: Sequence[RunRecord]) -> str:
    """ASCII per-stage timing table over the profiled records.

    Stages print in pipeline order with total / mean-per-record time
    and a share bar.  Without any profiled record the table degrades
    to a hint about how to collect traces.
    """
    stats = stage_stats(records)
    if not stats["n_profiled"]:
        return ("no stage traces in these records — rerun with "
                "--profile (or REPRO_EXEC_PROFILE=1) to collect "
                "per-stage timings")
    lines = [f"stage timings over {stats['n_profiled']} profiled "
             "record(s)   (total ms | mean ms | share)"]
    width = max(len(name) for name in stats["stages"])
    for name, row in stats["stages"].items():
        bar = "#" * int(round(30 * row["share"]))
        lines.append(
            f"  {name:>{width}} | {row['total_s'] * 1e3:9.2f} | "
            f"{row['mean_s'] * 1e3:7.3f} | {bar} {row['share']:.2f}")
    if stats["counters"]:
        lines.append("  counters: " + ", ".join(
            f"{k}={v}" for k, v in stats["counters"].items()))
    return "\n".join(lines)


def summarize(records: Sequence[RunRecord]) -> str:
    """Multi-line human summary of a record set."""
    lines = [f"scenarios: {len(records)}"]
    if not records:
        return lines[0]
    lines.append(f"decoded exactly: {sum(r.success for r in records)} "
                 f"({100.0 * success_rate(records):.1f}%)")
    lines.append(f"mean BER: {mean_ber(records):.3f}")
    for stage, count in stage_counts(records).items():
        lines.append(f"  stage {stage}: {count}")
    networked = [r for r in records if r.networked]
    if networked:
        stats = fusion_stats(networked)
        err = stats["mean_speed_error"]
        lines.append(f"networked passes: {len(networked)} "
                     f"(fused {100.0 * stats['fused_rate']:.1f}% | "
                     f"best single node "
                     f"{100.0 * stats['best_node_rate']:.1f}% | "
                     f"fusion gain {stats['mean_fusion_gain']:+.3f} | "
                     f"speed err "
                     f"{'n/a' if err is None else f'{100.0 * err:.1f}%'})")
    streamed = [r for r in records if r.streamed]
    if streamed:
        stats = latency_stats(streamed)

        def ms(value: float | None) -> str:
            return ("n/a" if value is None
                    else f"{format_ms(value)} ms")

        lines.append(f"streamed passes: {len(streamed)} "
                     f"(detect {100.0 * stats['detect_rate']:.1f}% | "
                     f"onset p50 {ms(stats['onset_p50_s'])} | "
                     f"first bit p50 {ms(stats['first_bit_p50_s'])} | "
                     f"verdict p50 {ms(stats['verdict_p50_s'])})")
    rb = robustness_stats(records)
    if rb["n_faulted"] or rb["executor_errors"]:
        n_events = sum(rb["fault_events"].values())

        def pct(value: float | None) -> str:
            return "n/a" if value is None else f"{100.0 * value:.1f}%"

        lines.append(f"faulted passes: {rb['n_faulted']} "
                     f"(decode {pct(rb['faulted_rate'])} vs clean "
                     f"{pct(rb['clean_rate'])} | {n_events} fault "
                     f"events | {rb['executor_errors']} executor "
                     f"errors)")
    sim_time = sum(r.trace_duration_s for r in records)
    wall = sum(r.elapsed_s for r in records)
    lines.append(f"simulated {sim_time:.1f} s of channel time in "
                 f"{wall:.1f} s of compute")
    return "\n".join(lines)


def group_table(records: Sequence[RunRecord], axis: str) -> str:
    """ASCII decode-rate table grouped by one spec axis."""
    rates = success_rate_by(records, axis)
    width = max((len(str(v)) for v in rates), default=1)
    lines = [f"decode rate by {axis}"]
    for value, rate in rates.items():
        bar = "#" * int(round(30 * rate))
        lines.append(f"  {value!s:>{width}} | {bar} {rate:.2f}")
    return "\n".join(lines)


def fusion_table(records: Sequence[RunRecord],
                 axis: str = "n_receivers") -> str:
    """Fusion columns grouped by one spec axis.

    One row per axis value: fused decode rate, best-single-node decode
    rate, mean per-pass fusion gain (a vote-efficiency check, <= 0 by
    construction — see :class:`RunRecord`; the Section 6 *improvement*
    is the fused-rate column read across ``n_receivers``) and mean
    relative speed-estimate error ('-' when no pass produced one).
    """
    groups = _group_by_axis(records, axis)
    width = max((len(str(v)) for v in groups), default=1)
    lines = [f"fusion by {axis}   (fused | best node | gain | speed err)"]
    for value, group in groups.items():
        stats = fusion_stats(group)
        err = stats["mean_speed_error"]
        lines.append(
            f"  {value!s:>{width}} | {stats['fused_rate']:.2f} | "
            f"{stats['best_node_rate']:.2f} | "
            f"{stats['mean_fusion_gain']:+.3f} | "
            f"{'-' if err is None else f'{err:.3f}'}")
    return "\n".join(lines)
