"""repro.engine — batched, parallel scenario-execution runtime.

The engine turns the reproduction from a bag of figure scripts into a
service-shaped system:

* :class:`ScenarioSpec` — one channel scenario as declarative data,
  with :func:`expand_grid` fanning a template out over parameter axes;
* :class:`BatchRunner` — executes scenario batches serially or across a
  process pool, with deterministic per-scenario seeds (``workers=N`` is
  byte-identical to ``workers=1``);
* :class:`ResultCache` / :class:`SqliteResultCache` — content-hash
  result stores (sharded JSON files, or one WAL-mode SQLite database)
  behind the :class:`CacheBackend` protocol, so repeated sweeps are
  near-free; :func:`open_cache` selects by name;
* :mod:`repro.exec` — the instrumented stage graph all three execution
  paths (serial, tensor batch, streaming replay) drive;
* :mod:`repro.engine.report` — decode-rate aggregation over records;
* the ``repro-engine`` CLI (:mod:`repro.engine.cli`) — run / sweep /
  report from the shell.

Quickstart::

    from repro.engine import BatchRunner, ScenarioSpec, expand_grid

    template = ScenarioSpec(source="sun", detector="led", cap=False,
                            ground="tarmac", bits="00",
                            symbol_width_m=0.1, speed_mps=5.0,
                            receiver_height_m=0.25)
    specs = expand_grid(template, {"ground_lux": [100.0, 450.0, 6200.0],
                                   "seed": [2, 3, 4, 5, 6]})
    result = BatchRunner(workers=4).run(specs)
    print(result.success_rate())
"""

from .cache import (
    CacheBackend,
    CacheStats,
    ResultCache,
    SqliteResultCache,
    open_cache,
)
from .executor import (
    build_frontend,
    build_network,
    build_scene,
    build_simulator,
    execute_scenario,
    node_positions,
    node_seed,
)
from .records import RecordStage, RunRecord, make_record, outcome_stage
from .report import (
    fusion_stats,
    fusion_table,
    group_table,
    latency_stats,
    latency_table,
    mean_ber,
    stage_counts,
    stage_stats,
    stage_table,
    success_rate,
    success_rate_by,
    summarize,
)
from .runner import BatchResult, BatchRunner, RunStats, run_grid
from .spec import GridSpec, ScenarioSpec, SpecIdentity, expand_grid, grid_size
from .streaming import SessionOutcome, StreamRunResult, run_stream

__all__ = [
    "BatchResult", "BatchRunner", "CacheBackend", "CacheStats", "GridSpec",
    "RecordStage", "ResultCache", "RunRecord", "RunStats", "ScenarioSpec",
    "SessionOutcome", "SpecIdentity", "SqliteResultCache",
    "StreamRunResult", "run_stream",
    "build_frontend", "build_network", "build_scene", "build_simulator",
    "execute_scenario", "expand_grid", "fusion_stats", "fusion_table",
    "grid_size", "group_table", "latency_stats", "latency_table",
    "make_record", "mean_ber", "node_positions", "node_seed", "open_cache",
    "outcome_stage", "run_grid", "stage_counts", "stage_stats",
    "stage_table", "success_rate", "success_rate_by", "summarize",
]
