"""Programmatic streaming replay over scenario specs.

The engine-level core of ``repro-engine stream``: capture every spec's
pass (deduplicated — byte-identical specs share one deterministic
capture — and optionally fanned over a process pool), replay the passes
as concurrent live sessions through :class:`repro.stream.SessionMux`
in waves of bounded concurrency, and return structured per-session
outcomes plus cross-session fusion.  The CLI is a thin formatter over
:func:`run_stream`; notebooks and scripts can call it directly, the
same way :func:`repro.engine.run_grid` exposes batch sweeps.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Sequence

from ..obs.events import active_events
from ..obs.registry import active_registry
from .executor import build_decoder, capture_trace
from .spec import ScenarioSpec

if TYPE_CHECKING:  # repro.net pulls in networkx — keep it lazy, like
    from ..net.fusion import FusedObservation  # executor.py does, so
    from ..net.node import Detection  # `import repro.engine` stays light.

__all__ = ["SessionOutcome", "StreamRunResult", "run_stream"]


@dataclass
class SessionOutcome:
    """Everything one replay session produced.

    Attributes:
        session_id: the mux session name (``s000``, ``s001``, ...).
        spec: the resolved scenario the session replayed.
        spec_hash: the spec's content hash (cache identity).
        sent_bits: payload encoded on the tag.
        verdict_bits: what the session's flush verdict recovered.
        success: exact payload match.
        onset_latency_s / first_bit_latency_s: sample-clock event
            latencies (None when the event never fired).
        verdict_latency_s: verdict latency (None when the decode
            produced no payload — same contract as ``RunRecord``).
        events: the session's full decode-event stream.
        n_chunks / max_queue_depth / backpressure_waits /
        throughput_sps: operational stats from the mux.
        signal_level: the online normalizer's running level state
            (``min``/``max``/``span``; None when no finite sample
            arrived).
        detection: the session's pass report for the fusion layer
            (None when the session failed before flushing).
        error: why the session failed ('' while healthy) — a decoder
            exception the mux isolated, or a watchdog timeout.
        timed_out: the mux watchdog cancelled this session.
        decode_errors: decoder exceptions the mux contained.
        fault_events: injected-fault event counts for this session's
            feed (empty without a fault plan).
    """

    session_id: str
    spec: ScenarioSpec
    spec_hash: str
    sent_bits: str
    verdict_bits: str
    success: bool
    onset_latency_s: float | None
    first_bit_latency_s: float | None
    verdict_latency_s: float | None
    events: list = field(default_factory=list)
    n_chunks: int = 0
    n_samples: int = 0
    busy_s: float = 0.0
    max_queue_depth: int = 0
    backpressure_waits: int = 0
    throughput_sps: float = 0.0
    signal_level: dict[str, float] | None = None
    detection: Detection | None = None
    error: str = ""
    timed_out: bool = False
    decode_errors: int = 0
    fault_events: dict[str, int] = field(default_factory=dict)

    @property
    def failed(self) -> bool:
        """Whether the mux gave up on this session."""
        return bool(self.error)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe dump (the ``--out`` JSONL row).

        Failure and fault keys appear only when set, so healthy
        fault-free rows keep the exact shape they had before the
        resilience layer existed.
        """
        row = {
            "session": self.session_id,
            "spec_hash": self.spec_hash,
            "sent_bits": self.sent_bits,
            "verdict_bits": self.verdict_bits,
            "success": self.success,
            "events": [e.to_dict() for e in self.events],
            "stats": {
                "n_chunks": self.n_chunks,
                "n_samples": self.n_samples,
                "busy_s": self.busy_s,
                "max_queue_depth": self.max_queue_depth,
                "backpressure_waits": self.backpressure_waits,
                "throughput_sps": self.throughput_sps,
            },
            "signal_level": self.signal_level,
        }
        if self.error:
            row["error"] = self.error
            row["timed_out"] = self.timed_out
            row["decode_errors"] = self.decode_errors
        if self.fault_events:
            row["fault_events"] = self.fault_events
        return row


@dataclass
class StreamRunResult:
    """Outcome of one :func:`run_stream` call.

    Attributes:
        outcomes: one entry per session, in session order.
        chunk_size: samples per ingest chunk used.
        feed_hz: per-session pacing used (0 = unpaced).
        sessions_per_wave: concurrency bound.
        n_distinct_captures: channel simulations actually run.
        samples_total: samples replayed across all sessions.
        wall_s: wall-clock time spent inside the session mux.
    """

    outcomes: list[SessionOutcome] = field(default_factory=list)
    chunk_size: int = 64
    feed_hz: float = 0.0
    sessions_per_wave: int = 8
    n_distinct_captures: int = 0
    samples_total: int = 0
    wall_s: float = 0.0

    @property
    def decode_rate(self) -> float:
        """Fraction of sessions whose verdict matched the payload."""
        if not self.outcomes:
            return 0.0
        return sum(o.success for o in self.outcomes) / len(self.outcomes)

    @property
    def failed_sessions(self) -> int:
        """Sessions the mux gave up on (poisoned or timed out)."""
        return sum(o.failed for o in self.outcomes)

    @property
    def backpressure_waits(self) -> int:
        return sum(o.backpressure_waits for o in self.outcomes)

    @property
    def throughput_sps(self) -> float:
        """Aggregate samples per wall-clock second."""
        return self.samples_total / self.wall_s if self.wall_s > 0 else 0.0

    def fusion_by_payload(self) -> "dict[str, FusedObservation]":
        """Cross-session verdicts, one confidence-weighted vote per
        distinct sent payload (sorted by payload).

        Failed sessions contributed no detection and simply do not
        vote; a payload observed only by failed sessions is absent.
        """
        from ..net.fusion import fuse_detections

        groups: dict[str, list] = {}
        for outcome in self.outcomes:
            if outcome.detection is not None:
                groups.setdefault(outcome.sent_bits, []).append(
                    outcome.detection)
        return {payload: fuse_detections(detections)
                for payload, detections in sorted(groups.items())}


def _capture_all(specs: Sequence[ScenarioSpec], workers: int,
                 progress: Callable[[str], None]) -> tuple[list, int]:
    """One trace per spec, simulating each distinct spec only once."""
    distinct: dict[str, ScenarioSpec] = {}
    hashes = []
    for spec in specs:
        spec_hash = spec.content_hash()
        hashes.append(spec_hash)
        distinct.setdefault(spec_hash, spec)
    progress(f"capturing {len(distinct)} distinct "
             f"pass{'es' if len(distinct) != 1 else ''} for "
             f"{len(specs)} sessions "
             f"({workers} worker{'s' if workers > 1 else ''})...")
    if workers > 1 and len(distinct) > 1:
        # Channel simulation dominates setup cost and every capture is
        # independent and deterministic — fan it out like BatchRunner.
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(
                max_workers=min(workers, len(distinct))) as pool:
            captured = list(pool.map(capture_trace, distinct.values()))
    else:
        captured = [capture_trace(spec) for spec in distinct.values()]
    trace_by_hash = dict(zip(distinct, captured))
    return ([(spec, spec_hash, trace_by_hash[spec_hash])
             for spec, spec_hash in zip(specs, hashes)], len(distinct))


def _session_faults(spec: ScenarioSpec, trace, chunk_size: int):
    """Apply one session's fault plan to its captured feed.

    Returns ``(trace, chunks_override, fault_events)``: the (possibly
    corrupted) trace, a pre-chunked transport override when stream
    faults fired (None otherwise), and the event counts.  No plan:
    the inputs come back untouched.
    """
    plan = spec.fault_plan
    if plan is None or not (plan.signals or plan.streams):
        return trace, None, {}
    from ..faults.inject import (
        FaultLog,
        apply_signal_faults,
        fault_rng,
        perturb_chunks,
    )
    from ..stream.replay import iter_chunks

    log = FaultLog()
    if plan.signals:
        trace, sig_log = apply_signal_faults(
            trace, plan, fault_rng("signal", spec.seed, plan))
        log.merge(sig_log)
    chunks = None
    if plan.streams:
        chunks, chunk_log = perturb_chunks(
            list(iter_chunks(trace.samples, chunk_size)),
            plan, fault_rng("stream", spec.seed, plan))
        log.merge(chunk_log)
    return trace, chunks, log.counts()


def run_stream(specs: Sequence[ScenarioSpec], sessions: int = 8,
               chunk_size: int = 64, feed_hz: float = 0.0,
               queue_chunks: int = 8, workers: int = 1,
               watchdog_s: float | None = None,
               progress: Callable[[str], None] | None = None,
               ) -> StreamRunResult:
    """Replay scenarios as concurrent live decode sessions.

    Sessions run isolated: a poisoned decoder or a watchdog expiry
    fails its own session (surfaced on the outcome's ``error`` /
    ``timed_out``) while every sibling completes and fuses normally.
    Specs carrying a ``fault_plan`` have their captured pass and chunk
    transport corrupted deterministically before the replay.

    Args:
        specs: the scenarios; each becomes one session.  Resolved (and
            forced single-receiver) internally.
        sessions: concurrent sessions per wave, >= 1.
        chunk_size: samples per ingest chunk, >= 1.
        feed_hz: per-session pacing in chunks/s (0 = unpaced).
        queue_chunks: per-session backpressure bound.
        workers: worker processes for the capture phase.
        watchdog_s: optional per-session watchdog budget.
        progress: optional sink for human progress lines.
    """
    from ..stream.session import replay_traces

    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    if sessions < 1:
        raise ValueError(f"sessions must be >= 1, got {sessions}")
    if feed_hz < 0.0:
        raise ValueError(f"feed_hz must be >= 0, got {feed_hz}")
    progress = progress or (lambda _line: None)
    resolved = [spec.replace(n_receivers=1).resolve() for spec in specs]
    feeds, n_distinct = _capture_all(resolved, workers, progress)

    result = StreamRunResult(chunk_size=chunk_size, feed_hz=feed_hz,
                             sessions_per_wave=sessions,
                             n_distinct_captures=n_distinct)
    for wave_start in range(0, len(feeds), sessions):
        wave = feeds[wave_start:wave_start + sessions]
        mux_feeds = {}
        chunk_overrides = {}
        wave_faults: dict[str, dict[str, int]] = {}
        for i, (spec, _, trace) in enumerate(wave):
            sid = f"s{wave_start + i:03d}"
            trace, chunks, events = _session_faults(spec, trace,
                                                    chunk_size)
            if chunks is not None:
                chunk_overrides[sid] = chunks
            wave_faults[sid] = events
            mux_feeds[sid] = (trace, 2 * len(spec.bits),
                              build_decoder(spec))
        started = time.perf_counter()
        mux = replay_traces(mux_feeds, chunk_size=chunk_size,
                            feed_hz=feed_hz, queue_chunks=queue_chunks,
                            watchdog_s=watchdog_s, isolate_errors=True,
                            chunks_by_session=chunk_overrides or None)
        result.wall_s += time.perf_counter() - started
        registry = active_registry()
        log = active_events()
        for i, (spec, spec_hash, _) in enumerate(wave):
            session = mux.session(f"s{wave_start + i:03d}")
            faults = wave_faults[session.session_id]
            if faults:
                if registry is not None:
                    for kind, count in faults.items():
                        registry.counter("fault_injections_total",
                                         {"kind": kind}).inc(count)
                if log is not None:
                    log.emit("fault_injected",
                             session=session.session_id,
                             counts=dict(sorted(faults.items())))
            verdict = session.verdict()
            stats = session.stats
            decoder = session.decoder
            norm = decoder.normalizer
            result.samples_total += stats.n_samples
            result.outcomes.append(SessionOutcome(
                session_id=session.session_id,
                spec=spec,
                spec_hash=spec_hash,
                sent_bits=spec.bits,
                # A failed session has no verdict event — it never
                # flushed; its outcome records why instead.
                verdict_bits=verdict.bits if verdict is not None else "",
                success=(verdict is not None
                         and verdict.bits == spec.bits),
                onset_latency_s=decoder.latency("onset"),
                first_bit_latency_s=decoder.latency("first_bit"),
                verdict_latency_s=decoder.verdict_latency_s,
                events=list(session.events),
                n_chunks=stats.n_chunks,
                n_samples=stats.n_samples,
                busy_s=stats.busy_s,
                max_queue_depth=stats.max_queue_depth,
                backpressure_waits=stats.backpressure_waits,
                throughput_sps=stats.throughput_sps,
                # NaN min means no finite sample ever arrived (a
                # constant stream still has known levels, zero span).
                signal_level=(None if math.isnan(norm.min) else {
                    "min": norm.min, "max": norm.max,
                    "span": norm.span}),
                detection=(session.detection()
                           if session.decoder.flushed else None),
                error=session.error,
                timed_out=stats.timed_out,
                decode_errors=stats.decode_errors,
                fault_events=wave_faults[session.session_id],
            ))
    return result
