"""Batched scenario execution over a worker pool.

:class:`BatchRunner` is the engine's execution core.  It takes any
iterable of :class:`ScenarioSpec`, resolves them (auto fields -> concrete
values, per-scenario deterministic seeds), consults the optional result
cache, and runs the remaining scenarios either serially or across a
``concurrent.futures.ProcessPoolExecutor`` with chunked dispatch.

Determinism contract: because every resolved spec carries its own seed
and :func:`execute_scenario` touches no shared state, ``workers=N``
produces records byte-identical (``RunRecord.canonical_json``) to
``workers=1`` for the same scenario list, in the same order.  The same
contract extends to ``backend="tensor"`` with the default ``float64``
dtype: the fused array passes of :func:`repro.tensor.execute_batch`
reproduce the serial records byte for byte.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from ..faults.retry import RetryPolicy
from ..obs.events import active_events
from ..obs.registry import MetricsRegistry, active_registry
from .cache import CacheBackend, open_cache
from .executor import error_record, execute_scenario
from .records import RecordStage, RunRecord
from .spec import ScenarioSpec, expand_grid

__all__ = ["RunStats", "BatchResult", "BatchRunner", "BatchAborted",
           "FAILURE_STAGES", "run_grid"]


#: Stages counted against a ``max_failures`` fail-fast budget: the
#: scenario produced no decode outcome at all.  Legitimate decode
#: failures (``preamble_not_found``, ``decode_failed``, ``bit_errors``)
#: are *results*, not failures — a sweep exists to measure them.
FAILURE_STAGES = frozenset({RecordStage.EXECUTOR_ERROR.value,
                            RecordStage.SIMULATION_FAILED.value})


class BatchAborted(RuntimeError):
    """A batch hit its ``max_failures`` fail-fast budget and stopped.

    Attributes:
        failures: failure count when the batch stopped.
        threshold: the ``max_failures`` budget that was hit.
        result: partial :class:`BatchResult` — every record completed
            before the abort, in submission order (later scenarios are
            simply absent).
    """

    def __init__(self, failures: int, threshold: int,
                 result: "BatchResult") -> None:
        super().__init__(f"batch aborted after {failures} failures "
                         f"(max_failures={threshold})")
        self.failures = failures
        self.threshold = threshold
        self.result = result


class _Abort(Exception):
    """Internal fail-fast carrier: partial fresh records for the
    pending specs (aligned; unfinished entries are ``None``)."""

    def __init__(self, records: list["RunRecord | None"]) -> None:
        self.records = records


@dataclass
class RunStats:
    """Execution accounting for one :meth:`BatchRunner.run` call.

    Attributes:
        total: scenarios requested.
        cache_hits: scenarios answered from the cache.
        executed: scenarios actually simulated.
        workers: worker processes used (1 = in-process serial).
        elapsed_s: wall-clock time for the whole batch.
        backend: execution backend ("process" or "tensor").
        pool_restarts: worker pools torn down and recreated (after a
            ``BrokenProcessPool``, or a per-scenario timeout stall)
            during this batch.
        serial_fallback: True when the pool broke past the retry
            policy's budget and the batch finished in-process.
        executor_errors: runner-synthesized ``executor_error`` records
            in this batch (timeouts, crashed workers).
        timeouts: scenarios the per-scenario timeout gave up on.
        fault_events: injected-fault event totals across the batch's
            records, summed by kind (empty when nothing fired).
    """

    total: int = 0
    cache_hits: int = 0
    executed: int = 0
    workers: int = 1
    elapsed_s: float = 0.0
    backend: str = "process"
    pool_restarts: int = 0
    serial_fallback: bool = False
    executor_errors: int = 0
    timeouts: int = 0
    fault_events: dict[str, int] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        """Fraction of the batch answered from the cache."""
        return self.cache_hits / self.total if self.total else 0.0

    @property
    def throughput(self) -> float:
        """Scenarios per wall-clock second for the whole batch."""
        return self.total / self.elapsed_s if self.elapsed_s > 0.0 else 0.0

    def to_metrics(self, registry: MetricsRegistry) -> None:
        """Fold one batch's accounting into ``registry``.

        The common stats shape (see also ``CacheStats.to_metrics``,
        ``FaultLog.to_metrics``, ``SessionStats.to_metrics``): counters
        for scenario outcomes and recovery actions, one histogram
        sample for the batch wall time.  A :class:`RunStats` describes
        exactly one :meth:`BatchRunner.run` call, so folding each
        instance once accumulates correctly across batches.
        """
        scenarios = registry.counter
        backend = {"backend": self.backend}
        scenarios("engine_scenarios_total",
                  {**backend, "outcome": "run"}).inc(self.executed)
        scenarios("engine_scenarios_total",
                  {**backend, "outcome": "cached"}).inc(self.cache_hits)
        scenarios("engine_scenarios_total",
                  {**backend, "outcome": "failed"}).inc(self.executor_errors)
        scenarios("engine_pool_restarts_total").inc(self.pool_restarts)
        scenarios("engine_timeouts_total").inc(self.timeouts)
        if self.serial_fallback:
            scenarios("engine_serial_fallbacks_total").inc()
        for kind, count in self.fault_events.items():
            scenarios("fault_injections_total", {"kind": kind}).inc(count)
        registry.histogram("engine_batch_seconds",
                           backend).observe(self.elapsed_s)

    def summary(self) -> str:
        """One-line human summary of batch performance."""
        line = (f"ran {self.total} scenarios in {self.elapsed_s:.2f}s "
                f"({self.cache_hits} cached [{self.hit_rate:.0%}], "
                f"{self.executed} simulated, {self.workers} workers, "
                f"{self.throughput:.1f} scenarios/s)")
        extras = []
        if self.timeouts:
            extras.append(f"{self.timeouts} timed out")
        if self.executor_errors:
            extras.append(f"{self.executor_errors} executor errors")
        if self.fault_events:
            extras.append(
                f"{sum(self.fault_events.values())} fault events")
        if extras:
            line += " [" + ", ".join(extras) + "]"
        return line


@dataclass
class BatchResult:
    """Ordered records + stats for one batch.

    ``records[i]`` corresponds to ``specs[i]`` of the submitted batch,
    regardless of cache hits or worker scheduling.
    """

    records: list[RunRecord] = field(default_factory=list)
    stats: RunStats = field(default_factory=RunStats)

    def success_rate(self) -> float:
        """Fraction of scenarios that decoded the exact payload."""
        if not self.records:
            return 0.0
        return sum(r.success for r in self.records) / len(self.records)

    def successes(self) -> list[RunRecord]:
        """Records whose payload decoded exactly."""
        return [r for r in self.records if r.success]

    def failures(self) -> list[RunRecord]:
        """Records that failed anywhere in the pipeline."""
        return [r for r in self.records if not r.success]


class BatchRunner:
    """Executes scenario batches with caching and optional parallelism.

    The worker pool is created lazily on the first parallel batch and
    **reused across** :meth:`run` calls — worker spawn cost (imports,
    interpreter start) is paid once per runner, not once per batch.
    Call :meth:`close` (or use the runner as a context manager) to tear
    the pool down deterministically; an unclosed runner tears it down
    on garbage collection as a fallback.

    Attributes:
        workers: worker processes; 1 runs everything in-process (the
            serial fallback — no pool, no pickling, easiest to debug).
        cache: optional :class:`CacheBackend` instance, or a cache
            *directory* (str/Path) opened via :func:`open_cache` with
            ``cache_backend``; hits skip simulation.
        cache_backend: backend name (``"disk"``/``"sqlite"``) used when
            ``cache`` is a directory path; None consults the
            ``REPRO_CACHE_BACKEND`` environment variable.  Only valid
            alongside a path — passing it with a ready-made backend
            instance is a contradiction and raises.
        chunk_size: scenarios per pool task — amortizes IPC overhead
            for thousand-scenario grids of cheap simulations.
        backend: ``"process"`` (the pool / serial path above) or
            ``"tensor"`` (:func:`repro.tensor.execute_batch` — fused
            single-process array passes; ``workers`` is ignored).
        dtype: tensor-backend accumulation dtype.  ``"float64"``
            (default) is byte-identical to the serial executor;
            ``"float32"`` is a faster, deterministic approximation and
            therefore **bypasses the result cache**, whose keys do not
            encode the dtype.
        retry_policy: :class:`~repro.faults.RetryPolicy` governing
            worker-pool recovery after a ``BrokenProcessPool``: one
            pool attempt per allowed attempt, backoff between them,
            then the in-process serial fallback.  The default
            (``RetryPolicy(max_attempts=2)``) replicates the classic
            behaviour: one immediate restart, then serial.
        scenario_timeout_s: per-scenario wall-clock budget.  When set,
            scenarios run as individual pool futures (even with
            ``workers=1`` — in-process code cannot be preempted); if no
            scenario completes within one budget the pool is killed and
            the unfinished scenarios are retried one at a time in
            quarantine, so a single pathological spec yields one
            ``executor_error`` record instead of hanging the batch.
            Incompatible with ``backend="tensor"`` (fused single-process
            passes cannot be preempted).
        max_failures: fail-fast budget.  Counting both cache hits and
            fresh records, once this many land in
            :data:`FAILURE_STAGES` the batch stops and
            :meth:`run` raises :class:`BatchAborted` carrying the
            partial result.  Legitimate decode failures never count.
    """

    BACKENDS = ("process", "tensor")

    def __init__(self, workers: int = 1,
                 cache: CacheBackend | str | Path | None = None,
                 chunk_size: int = 8, backend: str = "process",
                 dtype: str = "float64",
                 retry_policy: RetryPolicy | None = None,
                 scenario_timeout_s: float | None = None,
                 max_failures: int | None = None,
                 cache_backend: str | None = None) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if isinstance(cache, (str, Path)):
            cache = open_cache(cache, cache_backend)
        elif cache_backend is not None:
            raise ValueError(
                "cache_backend selects how a cache *path* is opened; "
                "pass cache as a directory, or construct the backend "
                "yourself and drop cache_backend")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if backend not in self.BACKENDS:
            raise ValueError(
                f"backend must be one of {self.BACKENDS}, got {backend!r}")
        if backend == "tensor":
            from ..tensor.batch import DTYPES
            if dtype not in DTYPES:
                raise ValueError(
                    f"dtype must be one of {DTYPES}, got {dtype!r}")
            if scenario_timeout_s is not None:
                raise ValueError(
                    "scenario_timeout_s requires backend='process': the "
                    "tensor backend's fused passes cannot be preempted")
        elif dtype != "float64":
            raise ValueError(
                "dtype is only configurable with backend='tensor', got "
                f"{dtype!r}")
        if scenario_timeout_s is not None and scenario_timeout_s <= 0.0:
            raise ValueError(f"scenario_timeout_s must be positive, "
                             f"got {scenario_timeout_s}")
        if max_failures is not None and max_failures < 1:
            raise ValueError(f"max_failures must be >= 1, "
                             f"got {max_failures}")
        self.workers = workers
        self.cache = cache
        self.chunk_size = chunk_size
        self.backend = backend
        self.dtype = dtype
        self.retry_policy = retry_policy or RetryPolicy(max_attempts=2)
        self.scenario_timeout_s = scenario_timeout_s
        self.max_failures = max_failures
        self._pool: ProcessPoolExecutor | None = None
        self._pool_restarts = 0
        self._serial_fallback = False
        self._timeouts = 0
        self._failures = 0

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the persistent worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "BatchRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass  # interpreter shutdown: the pool dies with the process

    @classmethod
    def local(cls, cache: CacheBackend | str | Path | None = None,
              ) -> "BatchRunner":
        """A runner sized to this machine's cores."""
        return cls(workers=max(1, os.cpu_count() or 1), cache=cache)

    # ------------------------------------------------------------------
    def run(self, specs: Iterable[ScenarioSpec]) -> BatchResult:
        """Execute a batch; returns records in submission order.

        Raises:
            BatchAborted: the ``max_failures`` fail-fast budget was
                exhausted; the exception carries the partial result.
        """
        started = time.perf_counter()
        self._pool_restarts = 0
        self._serial_fallback = False
        self._timeouts = 0
        self._failures = 0
        resolved = [spec.resolve() for spec in specs]
        records: list[RunRecord | None] = [None] * len(resolved)

        log = active_events()
        if log is not None:
            log.emit("batch_start", n_specs=len(resolved),
                     backend=self.backend, workers=self.workers)

        # float32 records are approximations keyed identically to the
        # exact float64 ones (content_hash covers the spec only), so
        # they must neither consult nor populate the cache.
        cache = self.cache if self.dtype == "float64" else None

        pending: list[int] = []
        if cache is not None:
            for i, spec in enumerate(resolved):
                hit = cache.get(spec.content_hash())
                if hit is not None:
                    records[i] = hit
                else:
                    pending.append(i)
        else:
            pending = list(range(len(resolved)))

        # Cached failures count against the fail-fast budget too — a
        # rerun of a known-broken grid should stop just as fast.
        aborted = False
        for record in records:
            if record is not None and self._note_failure(record):
                aborted = True
                break

        fresh: list[RunRecord | None] = [None] * len(pending)
        if not aborted:
            try:
                fresh = self._execute([resolved[i] for i in pending])
            except _Abort as abort:
                fresh = abort.records
                fresh += [None] * (len(pending) - len(fresh))
                aborted = True

        executed = 0
        for i, record in zip(pending, fresh):
            if record is None:
                continue
            executed += 1
            records[i] = record
            # Runner-synthesized records describe this run's executor,
            # not the scenario: never cache them.
            if (cache is not None
                    and record.stage != RecordStage.EXECUTOR_ERROR):
                cache.put(record)

        kept = [r for r in records if r is not None]
        stats = RunStats(
            total=len(resolved),
            cache_hits=len(resolved) - len(pending),
            executed=executed,
            workers=self.workers,
            elapsed_s=time.perf_counter() - started,
            backend=self.backend,
            pool_restarts=self._pool_restarts,
            serial_fallback=self._serial_fallback,
            executor_errors=sum(r.stage == RecordStage.EXECUTOR_ERROR
                                for r in kept),
            timeouts=self._timeouts,
            fault_events=_sum_fault_events(kept),
        )
        registry = active_registry()
        if registry is not None:
            stats.to_metrics(registry)
        if log is not None:
            if stats.fault_events:
                log.emit("fault_injected",
                         counts=dict(sorted(stats.fault_events.items())))
            log.emit("batch_end", n_specs=stats.total,
                     cached=stats.cache_hits, executed=stats.executed,
                     failed=stats.executor_errors, aborted=aborted,
                     elapsed_s=round(stats.elapsed_s, 6))
        result = BatchResult(records=kept, stats=stats)
        if aborted:
            raise BatchAborted(self._failures, self.max_failures, result)
        return result

    def run_grid(self, template: ScenarioSpec,
                 axes: Mapping[str, Sequence]) -> BatchResult:
        """Expand a grid and run it (convenience)."""
        return self.run(expand_grid(template, axes))

    # ------------------------------------------------------------------
    def _note_failure(self, record: RunRecord) -> bool:
        """Count a record against the fail-fast budget; True = abort."""
        if record.stage in FAILURE_STAGES:
            self._failures += 1
            if (self.max_failures is not None
                    and self._failures >= self.max_failures):
                return True
        return False

    def _kill_pool(self) -> None:
        """Tear the pool down *hard*: stuck workers never return, so a
        cooperative shutdown would wait forever.  Worker processes are
        killed first (a private attribute, guarded — degrade to a
        non-waiting shutdown if the layout moves), then the executor is
        discarded without waiting."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        for process in list(getattr(pool, "_processes", {}).values()):
            try:
                process.kill()
            except Exception:
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    def _serial(self, specs: Sequence[ScenarioSpec]) -> list[RunRecord]:
        out: list[RunRecord] = []
        for spec in specs:
            record = execute_scenario(spec)
            out.append(record)
            if self._note_failure(record):
                raise _Abort(out)
        return out

    def _execute(self, specs: Sequence[ScenarioSpec]) -> list[RunRecord]:
        if not specs:
            return []
        if self.backend == "tensor":
            from ..tensor.batch import execute_batch

            records = execute_batch(specs, dtype=self.dtype)
            # The fused passes are all-or-nothing, so fail-fast can
            # only trim the already-computed tail.
            for k, record in enumerate(records):
                if self._note_failure(record):
                    raise _Abort(records[:k + 1])
            return records
        if self.scenario_timeout_s is not None:
            return self._execute_with_timeout(specs)
        if self.workers == 1 or len(specs) == 1:
            return self._serial(specs)
        workers = min(self.workers, len(specs))
        # Chunking keeps per-task IPC overhead negligible while still
        # load-balancing: at least ~4 chunks per worker when possible.
        chunksize = max(1, min(self.chunk_size,
                               len(specs) // (workers * 4) or 1))
        policy = self.retry_policy
        baseline = self._failures
        for attempt in range(policy.max_attempts):
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
            policy.attempts_made += 1
            results: list[RunRecord] = []
            try:
                for record in self._pool.map(execute_scenario, specs,
                                             chunksize=chunksize):
                    results.append(record)
                    if self._note_failure(record):
                        self._kill_pool()
                        raise _Abort(results)
                return results
            except BrokenProcessPool:
                # A worker died mid-batch (OOM kill, segfault, hard
                # crash in a C extension).  The pool is unusable and
                # every in-flight result is lost, but the *batch* is
                # still salvageable: every spec is deterministic, so
                # rerunning the whole list is safe.  Tear the pool
                # down and recreate it per the retry policy (with its
                # backoff — transient resource pressure gets a chance
                # to clear); past the budget, stop burning processes
                # and finish in-process.
                self.close()
                self._failures = baseline  # the rerun recounts them
                if attempt == policy.max_attempts - 1:
                    self._serial_fallback = True
                    return self._serial(specs)
                self._pool_restarts += 1
                log = active_events()
                if log is not None:
                    log.emit("pool_restart", reason="broken_pool",
                             attempt=attempt)
                policy.retries += 1
                delay = policy.delay_s(attempt)
                if delay > 0.0:
                    policy.total_wait_s += delay
                    time.sleep(delay)
            except _Abort:
                raise
            except Exception:
                # Any other failure (unpicklable spec, executor bug)
                # would just repeat on retry; drop the pool so the
                # next batch starts fresh and let the caller see it.
                self.close()
                raise
        raise AssertionError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------
    def _execute_with_timeout(self,
                              specs: Sequence[ScenarioSpec],
                              ) -> list[RunRecord]:
        """Per-scenario-timeout path: individual pool futures.

        Scenarios are submitted one future each (no chunking: a chunk
        shares its fate, which would let one stuck spec poison its
        chunk-mates).  A stall — no future completing within one
        scenario budget — means at least one worker is stuck; the pool
        is killed and every unfinished scenario retries alone in
        quarantine, separating the healthy (they complete) from the
        pathological (they time out again and are recorded as
        ``executor_error``).
        """
        timeout = self.scenario_timeout_s
        records: list[RunRecord | None] = [None] * len(specs)
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        futures = {self._pool.submit(execute_scenario, spec): i
                   for i, spec in enumerate(specs)}
        pending = set(futures)
        broken = False
        while pending and not broken:
            done, pending = wait(pending, timeout=timeout,
                                 return_when=FIRST_COMPLETED)
            if not done:
                break  # stall: a full scenario budget with no progress
            for future in done:
                i = futures[future]
                try:
                    records[i] = future.result()
                except BrokenProcessPool:
                    broken = True
                    continue
                except Exception as exc:
                    records[i] = error_record(
                        specs[i], f"{type(exc).__name__}: {exc}")
                if records[i] is not None and self._note_failure(records[i]):
                    self._kill_pool()
                    raise _Abort(records)

        leftovers = [i for i, r in enumerate(records) if r is None]
        if leftovers:
            self._kill_pool()
            self._pool_restarts += 1
            log = active_events()
            if log is not None:
                log.emit("pool_restart", reason="timeout_stall",
                         leftovers=len(leftovers))
            for i in leftovers:
                records[i] = self._quarantine(specs[i])
                if self._note_failure(records[i]):
                    raise _Abort(records)
        return records  # type: ignore[return-value]

    def _quarantine(self, spec: ScenarioSpec) -> RunRecord:
        """Run one suspect scenario alone in a disposable worker."""
        timeout = self.scenario_timeout_s
        pool = ProcessPoolExecutor(max_workers=1)
        try:
            future = pool.submit(execute_scenario, spec)
            try:
                return future.result(timeout=timeout)
            except FuturesTimeout:
                self._timeouts += 1
                return error_record(
                    spec, f"scenario timed out after {timeout:g} s "
                          f"(quarantined)")
            except BrokenProcessPool:
                return error_record(
                    spec, "worker process died (quarantined)")
            except Exception as exc:
                return error_record(spec, f"{type(exc).__name__}: {exc}")
        finally:
            for process in list(getattr(pool, "_processes", {}).values()):
                try:
                    process.kill()
                except Exception:
                    pass
            pool.shutdown(wait=False, cancel_futures=True)


def _sum_fault_events(records: Sequence[RunRecord]) -> dict[str, int]:
    """Batch-wide injected-fault totals, summed by kind."""
    totals: dict[str, int] = {}
    for record in records:
        for kind, count in record.fault_events.items():
            totals[kind] = totals.get(kind, 0) + count
    return totals


def run_grid(template: ScenarioSpec, axes: Mapping[str, Sequence],
             runner: BatchRunner | None = None) -> BatchResult:
    """One-call grid sweep with a default (serial) runner."""
    return (runner or BatchRunner()).run_grid(template, axes)
