"""Batched scenario execution over a worker pool.

:class:`BatchRunner` is the engine's execution core.  It takes any
iterable of :class:`ScenarioSpec`, resolves them (auto fields -> concrete
values, per-scenario deterministic seeds), consults the optional result
cache, and runs the remaining scenarios either serially or across a
``concurrent.futures.ProcessPoolExecutor`` with chunked dispatch.

Determinism contract: because every resolved spec carries its own seed
and :func:`execute_scenario` touches no shared state, ``workers=N``
produces records byte-identical (``RunRecord.canonical_json``) to
``workers=1`` for the same scenario list, in the same order.  The same
contract extends to ``backend="tensor"`` with the default ``float64``
dtype: the fused array passes of :func:`repro.tensor.execute_batch`
reproduce the serial records byte for byte.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from .cache import ResultCache
from .executor import execute_scenario
from .records import RunRecord
from .spec import ScenarioSpec, expand_grid

__all__ = ["RunStats", "BatchResult", "BatchRunner", "run_grid"]


@dataclass
class RunStats:
    """Execution accounting for one :meth:`BatchRunner.run` call.

    Attributes:
        total: scenarios requested.
        cache_hits: scenarios answered from the cache.
        executed: scenarios actually simulated.
        workers: worker processes used (1 = in-process serial).
        elapsed_s: wall-clock time for the whole batch.
        backend: execution backend ("process" or "tensor").
        pool_restarts: worker pools torn down and recreated after a
            ``BrokenProcessPool`` during this batch.
        serial_fallback: True when the pool broke twice and the batch
            finished in-process.
    """

    total: int = 0
    cache_hits: int = 0
    executed: int = 0
    workers: int = 1
    elapsed_s: float = 0.0
    backend: str = "process"
    pool_restarts: int = 0
    serial_fallback: bool = False

    @property
    def hit_rate(self) -> float:
        """Fraction of the batch answered from the cache."""
        return self.cache_hits / self.total if self.total else 0.0

    @property
    def throughput(self) -> float:
        """Scenarios per wall-clock second for the whole batch."""
        return self.total / self.elapsed_s if self.elapsed_s > 0.0 else 0.0

    def summary(self) -> str:
        """One-line human summary of batch performance."""
        return (f"ran {self.total} scenarios in {self.elapsed_s:.2f}s "
                f"({self.cache_hits} cached [{self.hit_rate:.0%}], "
                f"{self.executed} simulated, {self.workers} workers, "
                f"{self.throughput:.1f} scenarios/s)")


@dataclass
class BatchResult:
    """Ordered records + stats for one batch.

    ``records[i]`` corresponds to ``specs[i]`` of the submitted batch,
    regardless of cache hits or worker scheduling.
    """

    records: list[RunRecord] = field(default_factory=list)
    stats: RunStats = field(default_factory=RunStats)

    def success_rate(self) -> float:
        """Fraction of scenarios that decoded the exact payload."""
        if not self.records:
            return 0.0
        return sum(r.success for r in self.records) / len(self.records)

    def successes(self) -> list[RunRecord]:
        """Records whose payload decoded exactly."""
        return [r for r in self.records if r.success]

    def failures(self) -> list[RunRecord]:
        """Records that failed anywhere in the pipeline."""
        return [r for r in self.records if not r.success]


class BatchRunner:
    """Executes scenario batches with caching and optional parallelism.

    The worker pool is created lazily on the first parallel batch and
    **reused across** :meth:`run` calls — worker spawn cost (imports,
    interpreter start) is paid once per runner, not once per batch.
    Call :meth:`close` (or use the runner as a context manager) to tear
    the pool down deterministically; an unclosed runner tears it down
    on garbage collection as a fallback.

    Attributes:
        workers: worker processes; 1 runs everything in-process (the
            serial fallback — no pool, no pickling, easiest to debug).
        cache: optional :class:`ResultCache`; hits skip simulation.
        chunk_size: scenarios per pool task — amortizes IPC overhead
            for thousand-scenario grids of cheap simulations.
        backend: ``"process"`` (the pool / serial path above) or
            ``"tensor"`` (:func:`repro.tensor.execute_batch` — fused
            single-process array passes; ``workers`` is ignored).
        dtype: tensor-backend accumulation dtype.  ``"float64"``
            (default) is byte-identical to the serial executor;
            ``"float32"`` is a faster, deterministic approximation and
            therefore **bypasses the result cache**, whose keys do not
            encode the dtype.
    """

    BACKENDS = ("process", "tensor")

    def __init__(self, workers: int = 1,
                 cache: ResultCache | None = None,
                 chunk_size: int = 8, backend: str = "process",
                 dtype: str = "float64") -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if backend not in self.BACKENDS:
            raise ValueError(
                f"backend must be one of {self.BACKENDS}, got {backend!r}")
        if backend == "tensor":
            from ..tensor.batch import DTYPES
            if dtype not in DTYPES:
                raise ValueError(
                    f"dtype must be one of {DTYPES}, got {dtype!r}")
        elif dtype != "float64":
            raise ValueError(
                "dtype is only configurable with backend='tensor', got "
                f"{dtype!r}")
        self.workers = workers
        self.cache = cache
        self.chunk_size = chunk_size
        self.backend = backend
        self.dtype = dtype
        self._pool: ProcessPoolExecutor | None = None
        self._pool_restarts = 0
        self._serial_fallback = False

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the persistent worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "BatchRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass  # interpreter shutdown: the pool dies with the process

    @classmethod
    def local(cls, cache: ResultCache | None = None) -> "BatchRunner":
        """A runner sized to this machine's cores."""
        return cls(workers=max(1, os.cpu_count() or 1), cache=cache)

    # ------------------------------------------------------------------
    def run(self, specs: Iterable[ScenarioSpec]) -> BatchResult:
        """Execute a batch; returns records in submission order."""
        started = time.perf_counter()
        self._pool_restarts = 0
        self._serial_fallback = False
        resolved = [spec.resolve() for spec in specs]
        records: list[RunRecord | None] = [None] * len(resolved)

        # float32 records are approximations keyed identically to the
        # exact float64 ones (content_hash covers the spec only), so
        # they must neither consult nor populate the cache.
        cache = self.cache if self.dtype == "float64" else None

        pending: list[int] = []
        if cache is not None:
            for i, spec in enumerate(resolved):
                hit = cache.get(spec.content_hash())
                if hit is not None:
                    records[i] = hit
                else:
                    pending.append(i)
        else:
            pending = list(range(len(resolved)))

        fresh = self._execute([resolved[i] for i in pending])
        for i, record in zip(pending, fresh):
            records[i] = record
            if cache is not None:
                cache.put(record)

        stats = RunStats(
            total=len(resolved),
            cache_hits=len(resolved) - len(pending),
            executed=len(pending),
            workers=self.workers,
            elapsed_s=time.perf_counter() - started,
            backend=self.backend,
            pool_restarts=self._pool_restarts,
            serial_fallback=self._serial_fallback,
        )
        return BatchResult(records=list(records), stats=stats)

    def run_grid(self, template: ScenarioSpec,
                 axes: Mapping[str, Sequence]) -> BatchResult:
        """Expand a grid and run it (convenience)."""
        return self.run(expand_grid(template, axes))

    # ------------------------------------------------------------------
    def _execute(self, specs: Sequence[ScenarioSpec]) -> list[RunRecord]:
        if not specs:
            return []
        if self.backend == "tensor":
            from ..tensor.batch import execute_batch

            return execute_batch(specs, dtype=self.dtype)
        if self.workers == 1 or len(specs) == 1:
            return [execute_scenario(spec) for spec in specs]
        workers = min(self.workers, len(specs))
        # Chunking keeps per-task IPC overhead negligible while still
        # load-balancing: at least ~4 chunks per worker when possible.
        chunksize = max(1, min(self.chunk_size,
                               len(specs) // (workers * 4) or 1))
        for attempt in range(2):
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
            try:
                return list(self._pool.map(execute_scenario, specs,
                                           chunksize=chunksize))
            except BrokenProcessPool:
                # A worker died mid-batch (OOM kill, segfault, hard
                # crash in a C extension).  The pool is unusable and
                # every in-flight result is lost, but the *batch* is
                # still salvageable: every spec is deterministic, so
                # rerunning the whole list is safe.  Tear the pool
                # down, recreate it once, and if it breaks again stop
                # burning processes and finish in-process.
                self.close()
                if attempt == 0:
                    self._pool_restarts += 1
                    continue
                self._serial_fallback = True
                return [execute_scenario(spec) for spec in specs]
            except Exception:
                # Any other failure (unpicklable spec, executor bug)
                # would just repeat on retry; drop the pool so the
                # next batch starts fresh and let the caller see it.
                self.close()
                raise
        raise AssertionError("unreachable")  # pragma: no cover


def run_grid(template: ScenarioSpec, axes: Mapping[str, Sequence],
             runner: BatchRunner | None = None) -> BatchResult:
    """One-call grid sweep with a default (serial) runner."""
    return (runner or BatchRunner()).run_grid(template, axes)
