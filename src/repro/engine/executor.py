"""Spec -> simulation: build and run one scenario.

:func:`execute_scenario` is the single choke point through which every
engine-driven simulation passes.  It reconstructs exactly the scene /
front-end / simulator assembly the analysis layer used to hand-roll
(:mod:`repro.core.capacity`, :mod:`repro.analysis.experiments`), so
engine results are bit-identical to the legacy code paths for the same
parameters and seed.

The function is a module-level callable of one picklable argument on
purpose: it is what :class:`repro.engine.BatchRunner` ships to worker
processes.
"""

from __future__ import annotations

import time

from ..channel.distortion import CLEAR, Atmosphere
from ..channel.mobility import (
    ConstantSpeed,
    MotionProfile,
    SpeedJitter,
    speed_doubling_profile,
)
from ..channel.scene import MovingObject, PassiveScene
from ..channel.simulator import ChannelSimulator, SimulatorConfig
from ..core.decoder import AdaptiveThresholdDecoder, DecoderConfig
from ..core.errors import DecodeError, PreambleNotFoundError
from ..hardware.frontend import FovCap, ReceiverFrontEnd
from ..hardware.led_receiver import LedReceiver
from ..hardware.photodiode import PdGain, Photodiode
from ..optics.geometry import Vec3
from ..optics.materials import material_by_name
from ..optics.sources import FluorescentCeiling, LedLamp, Sun
from ..tags.packet import Packet
from ..tags.surface import TagSurface
from ..vehicles.profiles import bmw_3_series, volvo_v40
from ..vehicles.rooftag import TaggedCar, TwoPhaseDecoder
from .records import RunRecord
from .spec import ScenarioSpec

__all__ = ["build_scene", "build_frontend", "build_simulator",
           "execute_scenario"]


_CAR_FACTORIES = {"volvo_v40": volvo_v40, "bmw_3_series": bmw_3_series}


def _build_source(spec: ScenarioSpec):
    if spec.source == "led_lamp":
        return LedLamp(
            position=Vec3(spec.lamp_offset_m, 0.0, spec.receiver_height_m),
            luminous_intensity=spec.lamp_intensity_cd)
    if spec.source == "sun":
        return Sun(ground_lux=spec.ground_lux)
    return FluorescentCeiling(ground_lux=spec.ground_lux,
                              height=spec.fluorescent_height_m)


def _build_motion(spec: ScenarioSpec, packet: Packet, start: float,
                  packet_offset_m: float = 0.0) -> MotionProfile:
    if spec.motion == "speed_doubling":
        # The Fig. 8 semantics: the speed doubles when the *packet*
        # midpoint passes the receiver.  On a car the packet sits
        # ``packet_offset_m`` behind the object's leading edge, which
        # is what the motion profile tracks — shift the halfway mark
        # accordingly (0 for bare tags).
        return speed_doubling_profile(packet.length_m, spec.speed_mps,
                                      start,
                                      halfway_offset_m=packet_offset_m)
    base = ConstantSpeed(spec.speed_mps, start)
    if spec.motion == "speed_jitter":
        return SpeedJitter(base, relative_deviation=spec.motion_param,
                           seed=spec.seed if spec.seed is not None else 0)
    return base


def _build_object(spec: ScenarioSpec, packet: Packet) -> MovingObject:
    start = spec.start_position_m
    if start is None:
        start = spec.auto_start_position_m()
    if spec.car is not None:
        car = _CAR_FACTORIES[spec.car]()
        tagged = TaggedCar(car=car, packet=packet)
        surface = tagged.surface()
        tag_offset = car.segment_span("roof")[0] + tagged.roof_offset_m
        motion = _build_motion(spec, packet, start, tag_offset)
        return MovingObject(surface, motion, car.model)
    tag = TagSurface.from_packet(packet)
    if spec.dirt > 0.0:
        tag = tag.degraded(spec.dirt)
    return MovingObject(tag, _build_motion(spec, packet, start), "tag")


def build_scene(spec: ScenarioSpec) -> PassiveScene:
    """Assemble the :class:`PassiveScene` a spec describes."""
    packet = Packet.from_bitstring(spec.bits,
                                   symbol_width_m=spec.symbol_width_m)
    atmosphere = (CLEAR if spec.visibility_m is None
                  else Atmosphere.from_visibility(spec.visibility_m))
    return PassiveScene(
        source=_build_source(spec),
        receiver_height_m=spec.receiver_height_m,
        objects=[_build_object(spec, packet)],
        ground=material_by_name(spec.ground),
        atmosphere=atmosphere,
    )


def build_frontend(spec: ScenarioSpec) -> ReceiverFrontEnd:
    """Assemble the receiver chain a spec describes."""
    if spec.detector == "pd":
        detector = Photodiode.opt101(gain=PdGain[spec.pd_gain])
    else:
        detector = LedReceiver.red_5mm()
    cap = FovCap.paper_cap() if spec.cap else None
    return ReceiverFrontEnd(detector=detector, cap=cap, seed=spec.seed)


def build_simulator(spec: ScenarioSpec) -> ChannelSimulator:
    """Scene + front end + config, ready to capture."""
    spec = spec.resolve()
    return ChannelSimulator(
        build_scene(spec), build_frontend(spec),
        SimulatorConfig(sample_rate_hz=spec.sample_rate_hz,
                        include_noise=spec.include_noise,
                        seed=spec.seed))


def _build_decoder(spec: ScenarioSpec):
    adaptive = AdaptiveThresholdDecoder(
        DecoderConfig(threshold_rule=spec.threshold_rule))
    if spec.decoder == "two_phase":
        return TwoPhaseDecoder(decoder=adaptive)
    return adaptive


def _bit_error_rate(sent: str, decoded: str) -> float:
    if not decoded:
        return 1.0
    n = max(len(sent), len(decoded))
    errors = sum(a != b for a, b in zip(sent, decoded))
    errors += abs(len(sent) - len(decoded))
    return errors / n


def execute_scenario(spec: ScenarioSpec) -> RunRecord:
    """Run one scenario end to end and record the outcome.

    Deterministic: the resolved spec carries its concrete seed, so the
    same spec yields the same record no matter where or when it runs.
    """
    spec = spec.resolve()
    started = time.perf_counter()
    packet = Packet.from_bitstring(spec.bits,
                                   symbol_width_m=spec.symbol_width_m)
    sent = packet.bit_string()
    try:
        sim = build_simulator(spec)
        trace = sim.capture_pass()
    except Exception as exc:
        # Contain per-scenario failures (a tag that does not fit the
        # car roof, a degenerate geometry): one bad grid point must
        # not abort a thousand-scenario batch.
        return RunRecord(
            spec_hash=spec.content_hash(),
            spec=spec.to_dict(),
            seed=spec.seed,
            sent_bits=sent,
            decoded_bits="",
            success=False,
            stage="simulation_failed",
            ber=1.0,
            n_samples=0,
            trace_duration_s=0.0,
            sample_rate_hz=spec.sample_rate_hz,
            noise_floor_lux=0.0,
            error=f"{type(exc).__name__}: {exc}",
            elapsed_s=time.perf_counter() - started,
        )
    decoded = ""
    stage = "decode_failed"
    try:
        result = _build_decoder(spec).decode(
            trace, n_data_symbols=2 * len(packet.data_bits))
        decoded = result.bit_string()
        stage = "decoded" if decoded == sent else "bit_errors"
    except PreambleNotFoundError:
        stage = "preamble_not_found"
    except DecodeError:
        stage = "decode_failed"

    return RunRecord(
        spec_hash=spec.content_hash(),
        spec=spec.to_dict(),
        seed=spec.seed,
        sent_bits=sent,
        decoded_bits=decoded,
        success=decoded == sent,
        stage=stage,
        ber=_bit_error_rate(sent, decoded),
        n_samples=len(trace.samples),
        trace_duration_s=len(trace.samples) / trace.sample_rate_hz,
        sample_rate_hz=trace.sample_rate_hz,
        noise_floor_lux=sim.scene.nominal_noise_floor_lux(),
        elapsed_s=time.perf_counter() - started,
    )
