"""Spec -> simulation: the serial driver of the shared stage graph.

:func:`execute_scenario` is the single choke point through which every
engine-driven simulation passes.  It reconstructs exactly the scene /
front-end / simulator assembly the analysis layer used to hand-roll
(:mod:`repro.core.capacity`, :mod:`repro.analysis.experiments`), so
engine results are bit-identical to the legacy code paths for the same
parameters and seed.

Execution is declared, not hand-sequenced: :data:`SERIAL_GRAPH` and
:data:`NETWORK_GRAPH` are :class:`repro.exec.StageGraph` instances over
the canonical ``build → simulate → inject_faults → … → decide → fuse``
pipeline, and this module is merely the per-scenario *driver* of that
graph (the tensor backend drives the same stages vectorized over a
batch; the streaming runtime drives them incrementally per chunk).
With profiling on (``REPRO_EXEC_PROFILE`` / ``--profile``) every record
carries a :class:`repro.exec.StageTrace` of per-stage wall time.

The function is a module-level callable of one picklable argument on
purpose: it is what :class:`repro.engine.BatchRunner` ships to worker
processes.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import field
from typing import Any

from ..channel.distortion import CLEAR, Atmosphere
from ..faults.inject import (
    FaultLog,
    apply_signal_faults,
    fault_rng,
    intermittent_window,
    node_fault_roll,
    perturb_chunks,
)
from ..channel.mobility import (
    ConstantSpeed,
    MotionProfile,
    SpeedJitter,
    speed_doubling_profile,
)
from ..channel.scene import MovingObject, PassiveScene
from ..channel.simulator import ChannelSimulator, SimulatorConfig
from ..core.decoder import AdaptiveThresholdDecoder, DecoderConfig
from ..core.errors import DecodeError, PreambleNotFoundError
from ..exec.graph import (
    ExecStage,
    FuncStage,
    StageGraph,
    StageTrace,
    maybe_stage,
    new_trace,
)
from ..hardware.frontend import FovCap, ReceiverFrontEnd
from ..obs.export import publish_stage_trace
from ..obs.registry import active_registry
from ..hardware.led_receiver import LedReceiver
from ..hardware.photodiode import PdGain, Photodiode
from ..optics.geometry import Vec3
from ..optics.materials import material_by_name
from ..optics.sources import FluorescentCeiling, LedLamp, Sun
from ..tags.packet import Packet
from ..tags.surface import TagSurface
from ..vehicles.profiles import bmw_3_series, volvo_v40
from ..vehicles.rooftag import TaggedCar, TwoPhaseDecoder
from .records import (
    RecordStage,
    RunRecord,
    bit_error_rate,
    make_record,
    outcome_stage,
)
from .spec import ScenarioSpec, SpecIdentity, derive_seed

__all__ = ["NETWORK_GRAPH", "SERIAL_GRAPH", "build_scene", "build_decoder",
           "build_frontend", "build_simulator", "build_network",
           "capture_trace", "error_record", "execute_scenario",
           "node_positions", "node_seed"]


_CAR_FACTORIES = {"volvo_v40": volvo_v40, "bmw_3_series": bmw_3_series}


def _build_source(spec: ScenarioSpec):
    if spec.source == "led_lamp":
        return LedLamp(
            position=Vec3(spec.lamp_offset_m, 0.0, spec.receiver_height_m),
            luminous_intensity=spec.lamp_intensity_cd)
    if spec.source == "sun":
        return Sun(ground_lux=spec.ground_lux)
    return FluorescentCeiling(ground_lux=spec.ground_lux,
                              height=spec.fluorescent_height_m)


def _build_motion(spec: ScenarioSpec, packet: Packet, start: float,
                  packet_offset_m: float = 0.0) -> MotionProfile:
    if spec.motion == "speed_doubling":
        # The Fig. 8 semantics: the speed doubles when the *packet*
        # midpoint passes the receiver.  On a car the packet sits
        # ``packet_offset_m`` behind the object's leading edge, which
        # is what the motion profile tracks — shift the halfway mark
        # accordingly (0 for bare tags).
        return speed_doubling_profile(packet.length_m, spec.speed_mps,
                                      start,
                                      halfway_offset_m=packet_offset_m)
    base = ConstantSpeed(spec.speed_mps, start)
    if spec.motion == "speed_jitter":
        return SpeedJitter(base, relative_deviation=spec.motion_param,
                           seed=spec.seed if spec.seed is not None else 0)
    return base


def _build_object(spec: ScenarioSpec, packet: Packet) -> MovingObject:
    start = spec.start_position_m
    if start is None:
        start = spec.auto_start_position_m()
    if spec.car is not None:
        car = _CAR_FACTORIES[spec.car]()
        tagged = TaggedCar(car=car, packet=packet)
        surface = tagged.surface()
        tag_offset = car.segment_span("roof")[0] + tagged.roof_offset_m
        motion = _build_motion(spec, packet, start, tag_offset)
        return MovingObject(surface, motion, car.model)
    tag = TagSurface.from_packet(packet)
    if spec.dirt > 0.0:
        tag = tag.degraded(spec.dirt)
    return MovingObject(tag, _build_motion(spec, packet, start), "tag")


def build_scene(spec: ScenarioSpec) -> PassiveScene:
    """Assemble the :class:`PassiveScene` a spec describes."""
    packet = Packet.from_bitstring(spec.bits,
                                   symbol_width_m=spec.symbol_width_m)
    atmosphere = (CLEAR if spec.visibility_m is None
                  else Atmosphere.from_visibility(spec.visibility_m))
    return PassiveScene(
        source=_build_source(spec),
        receiver_height_m=spec.receiver_height_m,
        objects=[_build_object(spec, packet)],
        ground=material_by_name(spec.ground),
        atmosphere=atmosphere,
    )


def build_frontend(spec: ScenarioSpec,
                   seed: int | None = None) -> ReceiverFrontEnd:
    """Assemble the receiver chain a spec describes.

    Args:
        spec: the scenario.
        seed: noise-seed override (networked runs give every node its
            own derived seed); defaults to the spec's seed.
    """
    if spec.detector == "pd":
        detector = Photodiode.opt101(gain=PdGain[spec.pd_gain])
    else:
        detector = LedReceiver.red_5mm()
    cap = FovCap.paper_cap() if spec.cap else None
    return ReceiverFrontEnd(detector=detector, cap=cap,
                            seed=spec.seed if seed is None else seed)


def build_simulator(spec: ScenarioSpec) -> ChannelSimulator:
    """Scene + front end + config, ready to capture."""
    spec = spec.resolve()
    return ChannelSimulator(
        build_scene(spec), build_frontend(spec),
        SimulatorConfig(sample_rate_hz=spec.sample_rate_hz,
                        include_noise=spec.include_noise,
                        seed=spec.seed))


def capture_trace(spec: ScenarioSpec):
    """Capture one scenario's pass as a :class:`SignalTrace`.

    A module-level callable of one picklable argument, like
    :func:`execute_scenario`, so capture-only consumers (the streaming
    session replay) can fan it out over a process pool.
    """
    return build_simulator(spec).capture_pass()


def build_decoder(spec: ScenarioSpec):
    """The decoder a spec describes (adaptive, or the two-phase car
    decoder wrapping a configured adaptive one)."""
    adaptive = AdaptiveThresholdDecoder(
        DecoderConfig(threshold_rule=spec.threshold_rule))
    if spec.decoder == "two_phase":
        return TwoPhaseDecoder(decoder=adaptive)
    return adaptive


# Backwards-compatible alias: the one BER definition now lives with
# the records (every driver shares it through ``make_record``).
_bit_error_rate = bit_error_rate


# ----------------------------------------------------------------------
# Networked receivers (Section 6)
# ----------------------------------------------------------------------

def node_positions(spec: ScenarioSpec) -> list[float]:
    """Ground positions of the deployed receiver nodes.

    Node 0 sits at the single-receiver position (x = 0); the rest are
    spaced downstream along the motion axis, so the object passes them
    in id order.
    """
    return [i * spec.receiver_spacing_m for i in range(spec.n_receivers)]


def node_seed(spec_seed: int, index: int) -> int:
    """Deterministic, well-separated noise seed for one receiver node.

    Hash-derived so neighbouring nodes never share noise streams and
    the mapping is stable across platforms and worker processes.
    """
    return derive_seed(f"node:{spec_seed}:{index}")


def _connect_topology(network, node_ids: list[str],
                      topology: str) -> None:
    if topology == "full":
        for i in range(len(node_ids)):
            for j in range(i + 1, len(node_ids)):
                network.connect(node_ids[i], node_ids[j])
    elif topology == "chain":
        for a, b in zip(node_ids, node_ids[1:]):
            network.connect(a, b)
    else:  # partitioned: two disjoint full meshes
        half = (len(node_ids) + 1) // 2
        for part in (node_ids[:half], node_ids[half:]):
            for i in range(len(part)):
                for j in range(i + 1, len(part)):
                    network.connect(part[i], part[j])


def build_network(spec: ScenarioSpec):
    """The :class:`repro.net.ReceiverNetwork` a spec's array describes.

    Nodes ``rx0..rxN-1`` at :func:`node_positions`, each with its own
    derived-noise-seed front end and a fresh decoder, wired per the
    spec's ``topology``.  Detections are not captured here — the
    executor records them per pass.

    ``repro.net`` (and its networkx dependency) is imported lazily to
    keep ``import repro.engine`` light and to let minimal environments
    (numpy only, networkx missing despite being declared) still run
    every single-receiver workload.
    """
    from ..net.node import ReceiverNode
    from ..net.tracker import ReceiverNetwork

    spec = spec.resolve()
    network = ReceiverNetwork()
    node_ids: list[str] = []
    for i, position in enumerate(node_positions(spec)):
        node = ReceiverNode(
            node_id=f"rx{i}",
            position_m=position,
            frontend=build_frontend(spec, seed=node_seed(spec.seed, i)),
            decoder=build_decoder(spec),
        )
        network.add_node(node)
        node_ids.append(node.node_id)
    _connect_topology(network, node_ids, spec.topology)
    return network


def _select_fused(fused_list):
    """The group representing the pass, from per-group fused verdicts.

    Most *decoded* reports first (then support, then size): a large
    all-undecoded group — e.g. failed nodes whose onset estimates
    drifted out of grouping tolerance — must not shadow a group
    holding an actual decode.
    """
    if not fused_list:
        return None
    return max(fused_list,
               key=lambda o: (o.n_decoded, o.support, o.n_reports))


def _select_track(tracks):
    """The pass's kinematic estimate: widest fit, then best residual."""
    if not tracks:
        return None
    return max(tracks, key=lambda t: (t.n_nodes, -t.residual_rms_s))


# ----------------------------------------------------------------------
# The serial drivers of the shared stage graph
# ----------------------------------------------------------------------

@dataclasses.dataclass
class _Run:
    """Mutable context one single-receiver scenario threads through
    :data:`SERIAL_GRAPH`."""

    spec: ScenarioSpec
    ident: SpecIdentity
    started: float
    packet: Packet
    sent: str
    n_data_symbols: int
    profile: StageTrace | None = None
    sim: ChannelSimulator | None = None
    trace: Any = None
    chunks: Any = None
    fault_log: FaultLog = field(default_factory=FaultLog)
    decoded: str = ""
    stage: str = RecordStage.DECODE_FAILED.value
    stream_fields: dict[str, Any] = field(default_factory=dict)


def _stage_build(run: _Run) -> None:
    run.sim = build_simulator(run.spec)


def _stage_simulate(run: _Run) -> None:
    run.trace = run.sim.capture_pass()


def _has_signal_faults(run: _Run) -> bool:
    plan = run.spec.fault_plan
    return plan is not None and plan.signals


def _stage_signal_faults(run: _Run) -> None:
    plan = run.spec.fault_plan
    run.trace, sig_log = apply_signal_faults(
        run.trace, plan, fault_rng("signal", run.spec.seed, plan))
    run.fault_log.merge(sig_log)


def _has_stream_faults(run: _Run) -> bool:
    plan = run.spec.fault_plan
    return (run.spec.stream_chunk > 0
            and plan is not None and plan.streams)


def _stage_stream_faults(run: _Run) -> None:
    """Corrupt the chunk transport before the streamed decode sees it.

    A fault plan with stream knobs perturbs chunk boundaries first;
    the verdict then describes the corrupted stream, by design.
    (``repro.stream`` is imported lazily, like ``repro.net``, to keep
    engine import light.)
    """
    from ..stream.replay import iter_chunks

    plan = run.spec.fault_plan
    run.chunks, chunk_log = perturb_chunks(
        list(iter_chunks(run.trace.samples, run.spec.stream_chunk)),
        plan, fault_rng("stream", run.spec.seed, plan))
    run.fault_log.merge(chunk_log)


def _stage_decode_streamed(run: _Run) -> None:
    """Online replay: feed the captured pass chunk-by-chunk through
    the streaming runtime.

    The flush verdict is byte-identical to the offline decode (parity
    guarantee), so the headline outcome matches an offline run of the
    same spec — streaming adds the latency telemetry, nothing else.
    Untimed at the graph level: the streaming runtime attributes its
    own normalize/acquire/decide interior per pushed chunk.
    """
    from ..stream.replay import replay_trace

    spec = run.spec
    replay = replay_trace(run.trace, spec.stream_chunk,
                          n_data_symbols=run.n_data_symbols,
                          decoder=build_decoder(spec),
                          chunks=run.chunks,
                          stage_trace=run.profile)
    verdict = replay.verdict
    if replay.decoder.result is not None:
        # The decode call returned: stage by payload comparison,
        # exactly as the offline driver labels it.
        run.decoded = replay.decoder.result.bit_string()
        run.stage = outcome_stage(run.decoded, run.sent)
    else:
        run.stage = verdict.stage
    run.stream_fields = dict(
        stream_chunks=replay.n_chunks,
        onset_latency_s=replay.latency("onset"),
        first_bit_latency_s=replay.latency("first_bit"),
        # Gated on decode success inside the decoder: a failed
        # decode's placeholder event time must not skew latency
        # percentiles.
        verdict_latency_s=replay.decoder.verdict_latency_s,
    )


def _stage_decode_offline(run: _Run) -> None:
    """Whole-trace decode; untimed at the graph level because the
    decoder attributes its own normalize/acquire/refine/decide
    interior."""
    try:
        result = build_decoder(run.spec).decode(
            run.trace, n_data_symbols=run.n_data_symbols,
            stage_trace=run.profile)
        run.decoded = result.bit_string()
        run.stage = outcome_stage(run.decoded, run.sent)
    except PreambleNotFoundError:
        run.stage = RecordStage.PREAMBLE_NOT_FOUND.value
    except DecodeError:
        run.stage = RecordStage.DECODE_FAILED.value


#: The single-receiver pipeline, declared once.  ``execute_scenario``
#: runs it in two slices (build+simulate inside the failure-containment
#: boundary, the rest outside) — same graph, same order.
SERIAL_GRAPH = StageGraph([
    FuncStage(ExecStage.BUILD, _stage_build),
    FuncStage(ExecStage.SIMULATE, _stage_simulate),
    FuncStage(ExecStage.INJECT_FAULTS, _stage_signal_faults,
              when=_has_signal_faults),
    FuncStage(ExecStage.INJECT_FAULTS, _stage_stream_faults,
              when=_has_stream_faults),
    FuncStage(ExecStage.DECIDE, _stage_decode_streamed,
              when=lambda run: run.spec.stream_chunk > 0, timed=False),
    FuncStage(ExecStage.DECIDE, _stage_decode_offline,
              when=lambda run: run.spec.stream_chunk == 0, timed=False),
], name="serial")


@dataclasses.dataclass
class _NetRun:
    """Mutable context one networked pass threads through
    :data:`NETWORK_GRAPH`."""

    spec: ScenarioSpec
    ident: SpecIdentity
    started: float
    packet: Packet
    sent: str
    n_data_symbols: int
    profile: StageTrace | None = None
    scene: Any = None
    network: Any = None
    node_rows: list[dict] = field(default_factory=list)
    fault_log: FaultLog = field(default_factory=FaultLog)
    first_trace: Any = None
    noise_floor: float = 0.0
    decoded: str = ""
    stage: str = RecordStage.DECODE_FAILED.value
    best_node: bool = False
    speed_est: float | None = None
    speed_error: float | None = None


def _net_build(run: _NetRun) -> None:
    run.scene = build_scene(run.spec)
    run.network = build_network(run.spec)


def _net_observe(run: _NetRun) -> None:
    """Per-node capture, fault injection and local decode.

    Every node captures its *own* trace of the same moving object
    (same scene, receiver shifted to the node's position, independent
    noise), decodes locally, and shares the detection over the
    connectivity graph.  Untimed at the graph level: the loop
    attributes simulate/inject_faults/decide per node.
    """
    spec = run.spec
    plan = spec.fault_plan
    profile = run.profile
    for i, node in enumerate(run.network.nodes):
        # Per-node fault streams: the node roll (dropout/intermittent)
        # and the node's signal corruption draw from independent,
        # node-indexed generators, so enabling one knob never shifts
        # another node's — or another layer's — draws.
        fate = "ok"
        if plan is not None and plan.nodes:
            node_rng = fault_rng(f"node:{i}", spec.seed, plan)
            fate = node_fault_roll(plan, node_rng)
        if fate == "dropped":
            # A silent node: no capture, no detection, no report — the
            # fusion layer simply sees fewer viewpoints.
            run.fault_log.nodes_dropped += 1
            run.node_rows.append({
                "node_id": node.node_id,
                "position_m": float(node.position_m),
                "bits": "",
                "success": False,
                "confidence": 0.0,
                "timestamp_s": 0.0,
                "timestamp_source": "none",
                "stage": RecordStage.NODE_DROPPED.value,
            })
            continue
        if profile is not None:
            profile.count("nodes_observed")
        with maybe_stage(profile, ExecStage.SIMULATE):
            node_scene = dataclasses.replace(run.scene,
                                             receiver_x_m=node.position_m)
            sim = ChannelSimulator(
                node_scene, node.frontend,
                SimulatorConfig(sample_rate_hz=spec.sample_rate_hz,
                                include_noise=spec.include_noise,
                                seed=node.frontend.seed))
            trace = sim.capture_pass()
        with maybe_stage(profile, ExecStage.INJECT_FAULTS):
            if plan is not None and plan.signals:
                trace, sig_log = apply_signal_faults(
                    trace, plan, fault_rng(f"signal:{i}", spec.seed, plan))
                run.fault_log.merge(sig_log)
            if fate == "intermittent":
                run.fault_log.nodes_intermittent += 1
                trace = intermittent_window(trace, plan, node_rng)
        if run.first_trace is None:
            run.first_trace = trace
            run.noise_floor = node_scene.nominal_noise_floor_lux()
        with maybe_stage(profile, ExecStage.DECIDE):
            detection = node.observe(trace,
                                     n_data_symbols=run.n_data_symbols)
        run.network.record(detection)
        run.node_rows.append({
            "node_id": node.node_id,
            "position_m": float(node.position_m),
            "bits": detection.bits,
            "success": detection.bits == run.sent,
            "confidence": float(detection.confidence),
            "timestamp_s": float(detection.timestamp_s),
            "timestamp_source": detection.timestamp_source,
            "stage": outcome_stage(detection.bits, run.sent,
                                   empty=RecordStage.NO_DECODE),
        })


def _net_fuse(run: _NetRun) -> None:
    """Network-level fusion and tracking: the ``fuse`` stage.

    The record's headline verdict is the network's fused one, computed
    from the most upstream node's viewpoint (``rx0``) — with a
    ``partitioned`` topology that is deliberately only rx0's island.
    """
    query = run.network.nodes[0].node_id
    fused = _select_fused(run.network.fuse_at(query, run.spec.speed_mps))
    estimate = _select_track(run.network.track_at(query,
                                                  run.spec.speed_mps))
    run.decoded = fused.bits if fused is not None else ""
    run.stage = outcome_stage(run.decoded, run.sent,
                              empty=RecordStage.DECODE_FAILED)
    run.best_node = any(row["success"] for row in run.node_rows)
    run.speed_est = (float(estimate.speed_mps)
                     if estimate is not None else None)
    run.speed_error = (abs(run.speed_est - run.spec.speed_mps)
                       / run.spec.speed_mps
                       if run.speed_est is not None else None)


#: The networked pipeline: one build, per-node simulate/observe, one
#: fuse.  Run in full inside the failure-containment boundary.
NETWORK_GRAPH = StageGraph([
    FuncStage(ExecStage.BUILD, _net_build),
    FuncStage(ExecStage.SIMULATE, _net_observe, timed=False),
    FuncStage(ExecStage.FUSE, _net_fuse),
], name="networked")


def _publish_profile(profile: StageTrace | None, driver: str) -> None:
    """Fold a completed trace into the active metrics registry.

    Telemetry reuses the timings the graph's ``maybe_stage`` hooks
    already collected — nothing here runs inside a stage.  No-op with
    profiling or telemetry off (and in pool workers, whose registries
    are per-process; pooled stage histograms follow the same
    single-process caveat as ``collect_traces``).
    """
    if profile is None:
        return
    registry = active_registry()
    if registry is not None:
        publish_stage_trace(registry, profile, driver)


def _execute_networked(run: _NetRun) -> RunRecord:
    """Drive :data:`NETWORK_GRAPH` and stamp the fused record."""
    NETWORK_GRAPH.run(run, run.profile)
    # Every node can be dropped by an aggressive fault plan: the pass
    # was simply never captured anywhere.
    first = run.first_trace
    n_samples = len(first.samples) if first is not None else 0
    sample_rate = (first.sample_rate_hz if first is not None
                   else run.spec.sample_rate_hz)
    _publish_profile(run.profile, "network")
    return make_record(
        spec_hash=run.ident.content_hash,
        spec=run.ident.payload,
        seed=run.spec.seed,
        sent_bits=run.sent,
        decoded_bits=run.decoded,
        stage=run.stage,
        n_samples=n_samples,
        sample_rate_hz=sample_rate,
        noise_floor_lux=run.noise_floor,
        fault_events=run.fault_log.counts(),
        nodes=run.node_rows,
        best_node_success=run.best_node,
        speed_est_mps=run.speed_est,
        speed_error=run.speed_error,
        elapsed_s=time.perf_counter() - run.started,
        stage_trace=run.profile,
    )


def execute_scenario(spec: ScenarioSpec) -> RunRecord:
    """Run one scenario end to end and record the outcome.

    Deterministic: the resolved spec carries its concrete seed, so the
    same spec yields the same record no matter where or when it runs.
    Profiling (``REPRO_EXEC_PROFILE``) attaches a per-stage
    :class:`StageTrace` without changing the record's canonical bytes.
    """
    spec = spec.resolve()
    ident = spec.identity()
    started = time.perf_counter()
    profile = new_trace()
    packet = Packet.from_bitstring(spec.bits,
                                   symbol_width_m=spec.symbol_width_m)
    sent = packet.bit_string()
    plan = spec.fault_plan
    n_data_symbols = 2 * len(packet.data_bits)
    if plan is not None and plan.exec_sleep_s > 0.0:
        # The chaos harness's deterministic stuck worker: a wall-clock
        # stall the runner's per-scenario timeout is expected to catch.
        time.sleep(plan.exec_sleep_s)
    run = _Run(spec=spec, ident=ident, started=started, packet=packet,
               sent=sent, n_data_symbols=n_data_symbols, profile=profile)
    try:
        if spec.n_receivers > 1:
            return _execute_networked(_NetRun(
                spec=spec, ident=ident, started=started, packet=packet,
                sent=sent, n_data_symbols=n_data_symbols, profile=profile))
        SERIAL_GRAPH.run(run, profile,
                         stages=(ExecStage.BUILD, ExecStage.SIMULATE))
    except Exception as exc:
        # Contain per-scenario failures (a tag that does not fit the
        # car roof, a degenerate geometry): one bad grid point must
        # not abort a thousand-scenario batch.
        _publish_profile(profile, "serial")
        return make_record(
            spec_hash=ident.content_hash,
            spec=ident.payload,
            seed=spec.seed,
            sent_bits=sent,
            stage=RecordStage.SIMULATION_FAILED,
            sample_rate_hz=spec.sample_rate_hz,
            error=f"{type(exc).__name__}: {exc}",
            elapsed_s=time.perf_counter() - started,
            stage_trace=profile,
        )
    # Fault injection and decode run *outside* the containment
    # boundary: their failures are verdicts (or bugs), not per-grid-
    # point simulation hazards.
    SERIAL_GRAPH.run(run, profile,
                     stages=(ExecStage.INJECT_FAULTS, ExecStage.DECIDE))
    _publish_profile(profile, "serial")
    return make_record(
        spec_hash=ident.content_hash,
        spec=ident.payload,
        seed=spec.seed,
        sent_bits=sent,
        decoded_bits=run.decoded,
        stage=run.stage,
        n_samples=len(run.trace.samples),
        sample_rate_hz=run.trace.sample_rate_hz,
        noise_floor_lux=run.sim.scene.nominal_noise_floor_lux(),
        fault_events=run.fault_log.counts(),
        elapsed_s=time.perf_counter() - started,
        stage_trace=profile,
        **run.stream_fields,
    )


def error_record(spec: ScenarioSpec, message: str,
                 elapsed_s: float = 0.0) -> RunRecord:
    """A runner-synthesized record for a scenario that never completed.

    The batch runner stamps these when it has to give up on a scenario
    — a per-scenario timeout fired, or a worker crash outlived every
    retry — so the batch stays complete (one record per spec) without
    pretending the pipeline produced an outcome.  ``executor_error``
    records are never written to the result cache.
    """
    spec = spec.resolve()
    ident = spec.identity()
    packet = Packet.from_bitstring(spec.bits,
                                   symbol_width_m=spec.symbol_width_m)
    return make_record(
        spec_hash=ident.content_hash,
        spec=ident.payload,
        seed=spec.seed,
        sent_bits=packet.bit_string(),
        stage=RecordStage.EXECUTOR_ERROR,
        sample_rate_hz=spec.sample_rate_hz,
        error=message,
        elapsed_s=elapsed_s,
    )
