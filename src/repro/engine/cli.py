"""``repro-engine`` — the engine's command-line entry point.

Subcommands::

    repro-engine run   --set source=sun --set detector=led --set cap=false \\
                       --set bits=00 --set receiver_height_m=0.25
    repro-engine sweep --set source=sun --set detector=led --set cap=false \\
                       --axis ground_lux=100,450,3700,6200 --axis seed=2,3,4 \\
                       --workers 4 --cache-dir .engine-cache --out runs.jsonl
    repro-engine sweep --scenario convoy,fog --count 200 --workers 8 \\
                       --group-by car
    repro-engine report runs.jsonl --group-by ground_lux
    repro-engine scenarios
    repro-engine stream --scenario convoy --count 32 --sessions 32 \\
                        --chunk 64
    repro-engine chaos --scenario convoy --count 24 \\
                       --plan '{"chunk_drop": 0.1, "node_dropout": 0.2}' \\
                       --intensity 0,0.5,1
    repro-engine sweep ... --telemetry telemetry/
    repro-engine metrics telemetry/

``chaos`` scales a fault mix across an intensity ladder and reruns the
same passes at every rung, printing the decode-rate degradation
frontier (see :mod:`repro.faults`).

``stream`` replays scenarios as concurrent live decode sessions
through :mod:`repro.stream` and prints per-session latency/throughput
tables plus cross-session fusion verdicts.

``run`` executes a single scenario and prints its record as JSON.
``sweep`` expands a grid (template + axes), a registered scenario
family (``--scenario``, composable with ``*``), or both — ``--axis``
fans each family scenario out further — through the batch runner.
``report`` re-reads a results file and summarizes it; records embed
their spec, so any spec field works for ``--group-by``.
``scenarios`` lists the registered scenario families.

``--telemetry DIR`` (on ``run``/``sweep``/``chaos``) activates the
:mod:`repro.obs` registry and event log for the command and writes
``events.jsonl`` + ``metrics.json`` + ``metrics.prom`` into DIR;
``metrics`` pretty-prints such a snapshot (pass the directory or the
``metrics.json`` file).
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
from pathlib import Path
from typing import Any, Iterator, Sequence

from ..exec.graph import profiled
from .cache import CACHE_BACKENDS
from .records import RecordStage, RunRecord
from .report import (fusion_table, group_table, latency_table,
                     robustness_table, stage_table, summarize)
from .runner import FAILURE_STAGES, BatchAborted, BatchRunner
from .spec import GridSpec, ScenarioSpec, expand_grid

__all__ = ["main", "build_parser"]


_BOOL_FIELDS = {"cap", "include_noise"}
_INT_FIELDS = {"seed", "n_receivers", "stream_chunk"}
_STR_FIELDS = {"bits", "source", "detector", "pd_gain", "ground", "car",
               "motion", "decoder", "threshold_rule", "topology"}
_NONEABLE = {"seed", "car", "visibility_m", "start_position_m",
             "sample_rate_hz", "fault_plan"}
#: Structured fields taking inline JSON on the command line, e.g.
#: ``--set fault_plan='{"chunk_drop": 0.1}'`` (the spec coerces the
#: mapping to its dataclass on construction).
_JSON_FIELDS = {"fault_plan"}

#: Process exit code for batches that died outside the physics —
#: crashed/quarantined workers or a --max-failures abort — as opposed
#: to legitimate decode failures (1) and usage errors (2).
EXIT_EXECUTOR_ERROR = 3


def _coerce(name: str, text: str) -> Any:
    """Parse one CLI value into the spec field's native type.

    Raises:
        ValueError: on an unknown field name (listing the valid ones)
            or an unparsable value.
    """
    import dataclasses

    valid = tuple(f.name for f in dataclasses.fields(ScenarioSpec))
    if name not in valid:
        raise ValueError(
            f"unknown spec field {name!r}; valid fields: "
            f"{', '.join(valid)}")
    if name in _NONEABLE and text.lower() in ("none", "null", "auto"):
        return None
    if name in _JSON_FIELDS:
        try:
            value = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{name} expects inline JSON: {exc}") from exc
        if not isinstance(value, dict):
            raise ValueError(f"{name} expects a JSON object, got {text!r}")
        return value
    if name in _BOOL_FIELDS:
        lowered = text.lower()
        if lowered in ("1", "true", "yes", "on"):
            return True
        if lowered in ("0", "false", "no", "off"):
            return False
        raise ValueError(f"{name} expects a boolean, got {text!r}")
    if name in _INT_FIELDS:
        return int(text)
    if name in _STR_FIELDS:
        return text
    return float(text)


def _parse_sets(pairs: Sequence[str]) -> dict[str, Any]:
    updates: dict[str, Any] = {}
    for pair in pairs:
        if "=" not in pair:
            raise ValueError(f"--set expects field=value, got {pair!r}")
        name, text = pair.split("=", 1)
        updates[name.strip()] = _coerce(name.strip(), text)
    return updates


def _parse_axis(pair: str) -> tuple[str, list[Any]]:
    """``name=v1,v2,...`` or ``name=lo:hi:n`` (inclusive linspace)."""
    if "=" not in pair:
        raise ValueError(f"--axis expects name=values, got {pair!r}")
    name, text = pair.split("=", 1)
    name = name.strip()
    if ":" in text:
        lo_s, hi_s, n_s = text.split(":")
        lo, hi, n = float(lo_s), float(hi_s), int(n_s)
        if n < 1:
            raise ValueError(f"axis {name!r} needs >= 1 points, got {n}")
        if n == 1:
            values: list[Any] = [lo]
        else:
            step = (hi - lo) / (n - 1)
            values = [lo + step * i for i in range(n)]
        if name in _INT_FIELDS:
            values = [int(round(v)) for v in values]
        return name, values
    return name, [_coerce(name, item) for item in text.split(",") if item]


def _load_template(args: argparse.Namespace) -> ScenarioSpec:
    template = ScenarioSpec()
    if getattr(args, "spec", None):
        template = ScenarioSpec.from_dict(
            json.loads(Path(args.spec).read_text()))
    overrides = _parse_sets(args.set or [])
    return template.replace(**overrides) if overrides else template


def _make_runner(args: argparse.Namespace) -> BatchRunner:
    cache_dir = getattr(args, "cache_dir", None)
    cache_backend = getattr(args, "cache_backend", None)
    if cache_backend is not None and not cache_dir:
        raise ValueError("--cache-backend requires --cache-dir")
    return BatchRunner(workers=getattr(args, "workers", 1) or 1,
                       cache=cache_dir or None,
                       cache_backend=cache_backend,
                       backend=getattr(args, "backend", "process"),
                       dtype=getattr(args, "dtype", "float64"),
                       scenario_timeout_s=getattr(args, "timeout", None),
                       max_failures=getattr(args, "max_failures", None))


def _write_records(records: Sequence[RunRecord], path: str | None) -> None:
    if path is None:
        return
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record.to_dict()) + "\n")


def _read_records(path: str) -> list[RunRecord]:
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(RunRecord.from_dict(json.loads(line)))
    return records


@contextlib.contextmanager
def _telemetry(args: argparse.Namespace) -> Iterator[tuple | None]:
    """Scoped telemetry for record-producing commands.

    With ``--telemetry DIR``: activates a fresh registry + event log
    (and profiling, so stage histograms can harvest the same traces
    ``--profile`` collects), yields ``(registry, events)``, and writes
    ``events.jsonl`` / ``metrics.json`` / ``metrics.prom`` into DIR
    when the command body completes.  Without the flag this is a
    no-op yielding None — the zero-cost disabled path.
    """
    directory = getattr(args, "telemetry", None)
    if not directory:
        yield None
        return
    from ..obs import telemetry_session, write_telemetry

    with profiled(), telemetry_session() as (registry, events):
        yield registry, events
        write_telemetry(directory, registry, events)
    print(f"telemetry written to {directory} "
          "(events.jsonl, metrics.json, metrics.prom)")


def _emit_stage_events(events, records: Sequence[RunRecord]) -> None:
    """Fold the records' stage timings into ``stage_timing`` events."""
    from .report import stage_stats

    stats = stage_stats(records)
    for stage, row in stats["stages"].items():
        events.emit("stage_timing", stage=stage,
                    total_s=round(row["total_s"], 6),
                    mean_s=round(row["mean_s"], 6),
                    n_profiled=stats["n_profiled"])


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------

def _cmd_run(args: argparse.Namespace) -> int:
    spec = _load_template(args)
    with _telemetry(args) as telem:
        result = _make_runner(args).run([spec])
        if telem is not None:
            _emit_stage_events(telem[1], result.records)
    record = result.records[0]
    _write_records(result.records, args.out)
    print(json.dumps(record.to_dict(), indent=2, sort_keys=True))
    if record.stage in FAILURE_STAGES:
        # The run died outside the physics (crashed worker, timeout,
        # simulation error) — that is never a "legitimate" failure, so
        # --allow-failure does not forgive it.
        return EXIT_EXECUTOR_ERROR
    return 0 if record.success or args.allow_failure else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.grid:
        grid = GridSpec.from_dict(json.loads(Path(args.grid).read_text()))
        template, axes = grid.template, grid.axes
        overrides = _parse_sets(args.set or [])
        if overrides:
            template = template.replace(**overrides)
    else:
        template = _load_template(args)
        axes = {}
    for pair in args.axis or []:
        name, values = _parse_axis(pair)
        axes[name] = values
    if args.scenario:
        from ..scenarios import expand_family

        bases = expand_family(args.scenario,
                              count=(100 if args.count is None
                                     else args.count),
                              seed=args.family_seed or 0,
                              template=template)
        specs = [spec for base in bases
                 for spec in expand_grid(base, axes)]
    else:
        if args.count is not None or args.family_seed is not None:
            raise ValueError(
                "--count/--family-seed only apply with --scenario")
        specs = expand_grid(template, axes)
    aborted: BatchAborted | None = None
    # The restoring profiled() context sets the profiling env var too,
    # so the runner's (lazily forked) pool workers inherit it and every
    # record comes back carrying a StageTrace.  --telemetry enables
    # profiling on its own (stage histograms harvest the same traces).
    profile_ctx = (profiled() if args.profile
                   else contextlib.nullcontext())
    with _telemetry(args) as telem, profile_ctx:
        runner = _make_runner(args)
        try:
            result = runner.run(specs)
        except BatchAborted as exc:
            aborted = exc
            result = exc.result
        if telem is not None:
            _emit_stage_events(telem[1], result.records)
    _write_records(result.records, args.out)
    print(result.stats.summary())
    print(summarize(result.records))
    if args.profile:
        print(stage_table(result.records))
    _print_group_tables(result.records, args.group_by or [])
    if args.out:
        print(f"records written to {args.out}")
    if aborted is not None:
        print(f"repro-engine: {aborted}", file=sys.stderr)
        return EXIT_EXECUTOR_ERROR
    if any(r.stage in FAILURE_STAGES for r in result.records):
        n = sum(r.stage in FAILURE_STAGES for r in result.records)
        print(f"repro-engine: {n} scenario(s) died outside the physics "
              "(executor error / simulation failure)", file=sys.stderr)
        return EXIT_EXECUTOR_ERROR
    return 0


def _print_group_tables(records: Sequence[RunRecord],
                        axes: Sequence[str]) -> None:
    """Per-axis decode tables, with fusion columns on networked runs
    and latency columns on streamed ones."""
    networked = any(r.networked for r in records)
    streamed = any(r.streamed for r in records)
    faulted = any(r.faulted or r.stage == RecordStage.EXECUTOR_ERROR
                  for r in records)
    for axis in axes:
        print(group_table(records, axis))
        if networked:
            print(fusion_table(records, axis))
        if streamed:
            print(latency_table(records, axis))
        if faulted:
            print(robustness_table(records, axis))
    # A networked sweep always gets the receiver-count fusion curve —
    # the Section 6 improvement — even without an explicit --group-by.
    if networked and "n_receivers" not in axes:
        print(fusion_table(records, "n_receivers"))


def _cmd_report(args: argparse.Namespace) -> int:
    records = _read_records(args.results)
    print(summarize(records))
    _print_group_tables(records, args.group_by or [])
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from ..analysis.reporting import format_table
    from ..perf import (
        compare_reports,
        default_baseline_path,
        default_workloads,
        format_comparisons,
        format_stage_medians,
        load_report,
        run_suite,
        save_report,
    )

    if args.list:
        print(format_table(
            ["workload", "kind", "description"],
            [(w.name, w.kind, w.description) for w in default_workloads()]))
        return 0

    report = run_suite(quick=args.quick, names=args.workload,
                       repeats=args.repeats, profile=args.profile)
    print(format_table(
        ["workload", "kind", "median ms", "stddev ms", "repeats"],
        [(r.name, r.kind, f"{r.median_s * 1e3:.2f}",
          f"{r.stddev_s * 1e3:.2f}", r.repeats)
         for r in report.results]))
    if args.profile:
        stage_table = format_stage_medians(report)
        if stage_table:
            print("\nstage medians (profiled passes):")
            print(stage_table)
    out_path = save_report(report, args.out)
    print(f"perf report written to {out_path}")

    baseline_path = (Path(args.baseline) if args.baseline
                     else default_baseline_path())
    if args.update_baseline:
        save_report(report, baseline_path)
        print(f"baseline updated at {baseline_path}")
        return 0
    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; skipping comparison "
              "(create one with --update-baseline)")
        return 0
    baseline = load_report(baseline_path)
    if baseline.quick != report.quick:
        def mode(quick: bool) -> str:
            return "quick" if quick else "full"

        print(f"baseline at {baseline_path} was recorded in "
              f"{mode(baseline.quick)} mode, this run in "
              f"{mode(report.quick)} mode; skipping comparison")
        return 0
    # When benchmarking a subset, only require those workloads to be
    # present; a full run must cover every baseline workload.
    comparisons = compare_reports(report, baseline,
                                  tolerance=args.tolerance,
                                  names=args.workload)
    print(format_comparisons(comparisons, args.tolerance))
    regressions = [c for c in comparisons if c.regressed]
    if regressions:
        names = ", ".join(c.name for c in regressions)
        print(f"PERF REGRESSION: {names}", file=sys.stderr)
        return 1
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    """Replay scenarios as concurrent live decode sessions.

    A thin formatter over :func:`repro.engine.run_stream` — spec
    assembly and argument resolution here, orchestration there.
    """
    from ..analysis.reporting import format_table
    from .report import format_ms as _ms
    from .streaming import run_stream

    if args.chunk is not None and args.chunk < 1:
        raise ValueError(f"--chunk must be >= 1, got {args.chunk}")
    if args.sessions < 1:
        raise ValueError(f"--sessions must be >= 1, got {args.sessions}")
    if args.count is not None and args.count < 1:
        raise ValueError(f"--count must be >= 1, got {args.count}")
    if args.feed_hz is not None and args.feed_hz < 0.0:
        raise ValueError(f"--feed-hz must be >= 0, got {args.feed_hz}")
    count = args.count if args.count is not None else args.sessions
    template = _load_template(args)
    # Explicit flags win; otherwise chunking/pacing spelled on the spec
    # itself (--set stream_chunk/stream_feed_hz, or a --spec file) is
    # honoured.  The fields are then stripped from the template so a
    # networked family stacking n_receivers > 1 mid-expansion does not
    # trip the single-receiver streaming validation.
    chunk_size = (args.chunk if args.chunk is not None
                  else template.stream_chunk or 64)
    feed_hz = (args.feed_hz if args.feed_hz is not None
               else template.stream_feed_hz)
    template = template.replace(stream_chunk=0, stream_feed_hz=0.0)
    if args.scenario:
        from ..scenarios import expand_family

        specs = expand_family(args.scenario, count=count,
                              seed=args.family_seed or 0,
                              template=template)
    else:
        if args.family_seed is not None:
            raise ValueError("--family-seed only applies with --scenario")
        if template.seed is not None:
            # An explicit --set seed pins the pass: every session
            # replays that exact capture (a pure concurrency test).
            specs = [template] * count
        else:
            # Otherwise fan per-session noise seeds out so sessions
            # see independent passes.
            specs = expand_grid(template, {"seed": list(range(count))})

    result = run_stream(specs, sessions=args.sessions,
                        chunk_size=chunk_size, feed_hz=feed_hz,
                        queue_chunks=args.queue_chunks,
                        workers=args.workers or 1, progress=print)

    rows = [(o.session_id, o.sent_bits, o.verdict_bits or "-",
             "yes" if o.success else "no",
             _ms(o.onset_latency_s), _ms(o.first_bit_latency_s),
             _ms(o.verdict_latency_s), o.n_chunks, o.max_queue_depth,
             f"{o.throughput_sps / 1e3:.0f}") for o in result.outcomes]
    print(format_table(
        ["session", "sent", "verdict", "ok", "onset ms", "first-bit ms",
         "verdict ms", "chunks", "max queue", "ksamples/s"], rows))
    print(f"\n{len(result.outcomes)} sessions in waves of "
          f"{result.sessions_per_wave} (chunk {result.chunk_size}, feed "
          f"{'unpaced' if not result.feed_hz else f'{result.feed_hz:g} Hz'}): "
          f"decode rate {result.decode_rate:.1%}, "
          f"{result.samples_total} samples in {result.wall_s:.2f}s wall "
          f"({result.throughput_sps / 1e3:.0f} ksamples/s aggregate), "
          f"{result.backpressure_waits} backpressure waits")

    fused_rows = [(payload, fused.n_reports, fused.bits or "-",
                   "yes" if fused.bits == payload else "no",
                   f"{fused.support:.2f}", f"{fused.agreement:.2f}")
                  for payload, fused in result.fusion_by_payload().items()]
    print("\ncross-session fusion (confidence-weighted vote per payload)")
    print(format_table(
        ["payload", "sessions", "fused", "ok", "support", "agreement"],
        fused_rows))

    if args.out:
        with open(args.out, "w") as handle:
            for outcome in result.outcomes:
                handle.write(json.dumps(outcome.to_dict()) + "\n")
        print(f"session records written to {args.out}")
    return 0


#: Default fault mix for ``repro-engine chaos`` when no --plan is
#: given: mild chunk loss/duplication on the transport, burst noise and
#: dropouts on the capture, and occasional receiver dropout (the node
#: knob only bites on networked specs).
_DEFAULT_CHAOS_PLAN = {"chunk_drop": 0.05, "chunk_duplicate": 0.02,
                       "burst_rate_hz": 2.0, "dropout_rate_hz": 1.0,
                       "node_dropout": 0.1}


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Sweep decode success versus fault intensity.

    Scales one fault mix across an intensity ladder and runs the same
    underlying passes at every rung (fault plans never perturb the
    noise seed), printing the measured degradation frontier.
    """
    from ..faults.chaos import sweep_fault_intensity
    from ..faults.plan import FaultPlan

    if args.plan_file:
        plan_dict = json.loads(Path(args.plan_file).read_text())
    elif args.plan:
        plan_dict = json.loads(args.plan)
    else:
        plan_dict = dict(_DEFAULT_CHAOS_PLAN)
    if not isinstance(plan_dict, dict):
        raise ValueError("--plan expects a JSON object of FaultPlan "
                         f"fields, got {plan_dict!r}")
    plan = FaultPlan.from_dict(plan_dict)
    intensities = [float(item) for item in args.intensity.split(",")
                   if item.strip()]
    if not intensities:
        raise ValueError(f"--intensity expects a comma-separated list "
                         f"of scale factors, got {args.intensity!r}")
    count = args.count if args.count is not None else 24
    if count < 1:
        raise ValueError(f"--count must be >= 1, got {count}")
    template = _load_template(args)
    if args.scenario:
        from ..scenarios import expand_family

        specs = expand_family(args.scenario, count=count,
                              seed=args.family_seed or 0,
                              template=template)
    else:
        if args.family_seed is not None:
            raise ValueError("--family-seed only applies with --scenario")
        if template.seed is not None:
            specs = [template]
        else:
            specs = expand_grid(template, {"seed": list(range(count))})
    with _telemetry(args) as telem:
        runner = _make_runner(args)
        sweep = sweep_fault_intensity(specs, plan, intensities, runner)
        if telem is not None:
            _emit_stage_events(
                telem[1],
                [r for point in sweep.points for r in point.records])
    print(f"chaos sweep: {len(specs)} scenario(s) x {len(intensities)} "
          f"intensity rung(s)")
    print(f"fault mix: {plan.canonical_json()}")
    print(sweep.render())
    print(f"degradation first->last rung: {sweep.degradation():+.2f} "
          "decode rate")
    if args.out:
        records = [r for point in sweep.points for r in point.records]
        _write_records(records, args.out)
        print(f"records written to {args.out}")
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from ..scenarios import describe_families

    print(describe_families())
    print("\ncompose families with ',' (or '*'), e.g. "
          "`repro-engine sweep --scenario convoy,fog --count 200`")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Pretty-print a telemetry snapshot written by ``--telemetry``."""
    from ..obs import format_metrics, load_snapshot

    path = Path(args.snapshot)
    if path.is_dir():
        path = path / "metrics.json"
    print(format_metrics(load_snapshot(path)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-engine",
        description="Batched scenario-execution runtime for the "
                    "passive-VLC reproduction.")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser, cache: bool = True,
                   out_help: str = "write records to this JSONL file",
                   ) -> None:
        p.add_argument("--spec", help="JSON file with template spec fields")
        p.add_argument("--set", action="append", metavar="FIELD=VALUE",
                       help="override one spec field (repeatable)")
        if cache:
            # The record cache only serves record-producing commands;
            # offering the flag where it would be a silent no-op
            # (stream captures traces, not records) misleads.
            p.add_argument("--cache-dir", help="result cache directory")
            p.add_argument("--cache-backend", choices=CACHE_BACKENDS,
                           default=None,
                           help="cache store under --cache-dir: 'disk' "
                                "(sharded JSON files) or 'sqlite' (one "
                                "WAL-mode database); default consults "
                                "REPRO_CACHE_BACKEND, then 'disk'")
            # Telemetry rides the same gate: record-producing commands
            # are the ones with metrics worth exporting.
            p.add_argument("--telemetry", metavar="DIR",
                           help="collect run telemetry (repro.obs) and "
                                "write events.jsonl + metrics.json + "
                                "metrics.prom into DIR; implies stage "
                                "profiling, records stay byte-identical")
        p.add_argument("--out", help=out_help)

    run_p = sub.add_parser("run", help="execute a single scenario")
    add_common(run_p)
    run_p.add_argument("--allow-failure", action="store_true",
                       help="exit 0 even when the decode fails "
                            "(executor errors still exit 3)")
    run_p.add_argument("--timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-scenario wall-clock budget; a stuck "
                            "scenario is quarantined and recorded as "
                            "an executor error")
    run_p.set_defaults(func=_cmd_run)

    sweep_p = sub.add_parser("sweep", help="expand and run a scenario grid")
    add_common(sweep_p)
    sweep_p.add_argument("--grid", help="JSON file with {template, axes}")
    sweep_p.add_argument("--axis", action="append",
                         metavar="FIELD=V1,V2|FIELD=LO:HI:N",
                         help="sweep one spec field (repeatable)")
    sweep_p.add_argument("--scenario", metavar="FAMILY[,FAMILY...]",
                         help="expand a registered scenario family "
                              "(compose with ',' — shell-safe — or "
                              "'*'; see the 'scenarios' subcommand)")
    sweep_p.add_argument("--count", type=int, default=None,
                         help="scenarios to draw from --scenario "
                              "(default: 100)")
    sweep_p.add_argument("--family-seed", type=int, default=None,
                         help="expansion seed for --scenario (default: 0)")
    sweep_p.add_argument("--backend", choices=BatchRunner.BACKENDS,
                         default="process",
                         help="execution backend: 'process' (worker "
                              "pool) or 'tensor' (fused single-process "
                              "array passes; ignores --workers)")
    sweep_p.add_argument("--dtype", choices=["float64", "float32"],
                         default="float64",
                         help="tensor-backend dtype; float64 matches "
                              "the serial executor byte for byte, "
                              "float32 is a faster approximation "
                              "(bypasses the cache)")
    sweep_p.add_argument("--workers", type=int, default=1,
                         help="worker processes (default: 1, serial)")
    sweep_p.add_argument("--group-by", action="append", metavar="FIELD",
                         help="print a decode-rate table per axis value")
    sweep_p.add_argument("--timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="per-scenario wall-clock budget; stuck "
                              "scenarios are quarantined and recorded "
                              "as executor errors instead of hanging "
                              "the batch")
    sweep_p.add_argument("--max-failures", type=int, default=None,
                         metavar="N",
                         help="fail fast: abort the batch (exit 3, "
                              "partial records kept) after N executor "
                              "errors / simulation failures")
    sweep_p.add_argument("--profile", action="store_true",
                         help="collect per-stage wall-time traces "
                              "(build/simulate/.../fuse) and print the "
                              "stage timing table; records stay "
                              "byte-identical")
    sweep_p.set_defaults(func=_cmd_sweep)

    report_p = sub.add_parser("report", help="summarize a results file")
    report_p.add_argument("results", help="JSONL file written by sweep/run")
    report_p.add_argument("--group-by", action="append", metavar="FIELD")
    report_p.set_defaults(func=_cmd_report)

    scen_p = sub.add_parser("scenarios",
                            help="list the registered scenario families")
    scen_p.set_defaults(func=_cmd_scenarios)

    metrics_p = sub.add_parser(
        "metrics",
        help="pretty-print a telemetry snapshot (repro.obs)")
    metrics_p.add_argument("snapshot",
                           help="metrics.json written by --telemetry "
                                "(or the telemetry directory itself)")
    metrics_p.set_defaults(func=_cmd_metrics)

    chaos_p = sub.add_parser(
        "chaos",
        help="sweep decode success vs fault intensity (repro.faults)")
    add_common(chaos_p,
               out_help="write every rung's records to this JSONL file")
    chaos_p.add_argument("--plan", metavar="JSON",
                         help="fault mix as inline JSON of FaultPlan "
                              "fields, e.g. '{\"chunk_drop\": 0.1}' "
                              "(default: a mild mixed-layer plan)")
    chaos_p.add_argument("--plan-file", metavar="PATH",
                         help="JSON file with the fault mix "
                              "(overrides --plan)")
    chaos_p.add_argument("--intensity", default="0,0.25,0.5,0.75,1",
                         metavar="I1,I2,...",
                         help="intensity ladder: scale factors applied "
                              "to the plan, run in order (default: "
                              "0,0.25,0.5,0.75,1; 0 = clean baseline)")
    chaos_p.add_argument("--scenario", metavar="FAMILY[,FAMILY...]",
                         help="draw scenarios from a registered family "
                              "(composable, like sweep)")
    chaos_p.add_argument("--count", type=int, default=None,
                         help="scenarios per rung (default: 24)")
    chaos_p.add_argument("--family-seed", type=int, default=None,
                         help="expansion seed for --scenario (default: 0)")
    chaos_p.add_argument("--workers", type=int, default=1,
                         help="worker processes (default: 1, serial)")
    chaos_p.add_argument("--timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="per-scenario wall-clock budget per rung")
    chaos_p.set_defaults(func=_cmd_chaos)

    stream_p = sub.add_parser(
        "stream",
        help="replay scenarios as concurrent live decode sessions "
             "(repro.stream)")
    add_common(stream_p, cache=False,
               out_help="write per-session event dumps to this JSONL "
                        "file (not RunRecords; repro-engine report "
                        "reads sweep/run output)")
    stream_p.add_argument("--scenario", metavar="FAMILY[,FAMILY...]",
                          help="draw session scenarios from a registered "
                               "family (composable, like sweep)")
    stream_p.add_argument("--count", type=int, default=None,
                          help="total sessions to replay "
                               "(default: --sessions)")
    stream_p.add_argument("--family-seed", type=int, default=None,
                          help="expansion seed for --scenario (default: 0)")
    stream_p.add_argument("--sessions", type=int, default=8,
                          help="concurrent sessions per wave (default: 8)")
    stream_p.add_argument("--chunk", type=int, default=None,
                          help="samples per ingest chunk (default: the "
                               "spec's stream_chunk, else 64)")
    stream_p.add_argument("--feed-hz", type=float, default=None,
                          help="per-session feed pacing in chunks/s; "
                               "0 = as fast as possible (default: the "
                               "spec's stream_feed_hz, itself 0)")
    stream_p.add_argument("--queue-chunks", type=int, default=8,
                          help="per-session backpressure bound "
                               "(default: 8 queued chunks)")
    stream_p.add_argument("--workers", type=int, default=1,
                          help="worker processes for the capture phase "
                               "(default: 1, serial)")
    stream_p.set_defaults(func=_cmd_stream)

    bench_p = sub.add_parser(
        "bench", help="run the tracked performance suite (repro.perf)")
    bench_p.add_argument("--quick", action="store_true",
                         help="small inputs / fewer repeats (CI mode)")
    bench_p.add_argument("--out", default="BENCH_perf.json",
                         help="where to write the machine-readable "
                              "report (default: BENCH_perf.json)")
    bench_p.add_argument("--baseline",
                         help="baseline report to compare against "
                              "(default: benchmarks/baselines/"
                              "BENCH_perf_baseline.json)")
    bench_p.add_argument("--tolerance", type=float, default=0.25,
                         help="allowed median slowdown vs the baseline "
                              "(default: 0.25 = +25%%)")
    bench_p.add_argument("--update-baseline", action="store_true",
                         help="write this run as the new baseline "
                              "instead of comparing")
    bench_p.add_argument("--workload", action="append", metavar="NAME",
                         help="run only the named workload (repeatable)")
    bench_p.add_argument("--repeats", type=int,
                         help="override every workload's repeat count")
    bench_p.add_argument("--list", action="store_true",
                         help="list the tracked workloads and exit")
    bench_p.add_argument("--profile", action="store_true",
                         help="also record per-stage medians "
                              "(stage_<name>_s extras) from extra "
                              "profiled passes; gated metrics are "
                              "timed unprofiled and unaffected")
    bench_p.set_defaults(func=_cmd_bench)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ValueError, OSError, KeyError) as exc:
        print(f"repro-engine: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
