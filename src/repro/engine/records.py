"""Run records: the engine's unit of result.

A :class:`RunRecord` is everything a sweep consumer needs from one
scenario execution — decode outcome, failure stage, bit error rate,
trace statistics and timing — plus the originating spec, so records are
self-describing: reports can group by any spec field without access to
the grid that produced them.

Equality deliberately excludes wall-clock timing: two runs of the same
resolved spec compare equal whether they executed serially, in a worker
pool, or on different machines.  :meth:`RunRecord.canonical_json` is the
byte-stable form used by determinism tests and the on-disk cache.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["RunRecord", "STAGES"]


#: Pipeline stages a scenario can end in, ordered by progress.
STAGES = ("simulation_failed", "preamble_not_found", "decode_failed",
          "bit_errors", "decoded")


@dataclass
class RunRecord:
    """Outcome of executing one resolved :class:`ScenarioSpec`.

    Attributes:
        spec_hash: content hash of the resolved spec (cache key).
        spec: the resolved spec as a plain dict.
        seed: the concrete noise seed that ran.
        sent_bits: payload physically encoded on the tag.
        decoded_bits: what the decoder recovered ('' on failure).
        success: exact payload match.
        stage: how far the pipeline got (see :data:`STAGES`).
        ber: bit error rate vs the sent payload (1.0 when nothing
            decoded).
        n_samples: RSS samples in the captured pass.
        trace_duration_s: captured window length (simulated seconds).
        sample_rate_hz: concrete sampling rate used.
        noise_floor_lux: the scene's nominal ambient level.
        error: the simulator's error message when ``stage`` is
            ``simulation_failed`` ('' otherwise).
        elapsed_s: wall-clock execution time (excluded from equality).
    """

    spec_hash: str
    spec: dict[str, Any]
    seed: int
    sent_bits: str
    decoded_bits: str
    success: bool
    stage: str
    ber: float
    n_samples: int
    trace_duration_s: float
    sample_rate_hz: float
    noise_floor_lux: float
    error: str = ""
    elapsed_s: float = field(default=0.0, compare=False)

    def __post_init__(self) -> None:
        if self.stage not in STAGES:
            raise ValueError(f"stage must be one of {STAGES}, "
                             f"got {self.stage!r}")

    def to_dict(self, include_timing: bool = True) -> dict[str, Any]:
        """Plain-dict form (JSON-safe)."""
        data = dataclasses.asdict(self)
        if not include_timing:
            data.pop("elapsed_s")
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunRecord":
        """Inverse of :meth:`to_dict`; tolerates a missing timing."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown record fields: {sorted(unknown)}")
        return cls(**dict(data))

    def canonical_json(self) -> str:
        """Byte-stable JSON excluding timing — the determinism contract:
        identical resolved specs must produce identical bytes regardless
        of worker count."""
        return json.dumps(self.to_dict(include_timing=False),
                          sort_keys=True, separators=(",", ":"))
