"""Run records: the engine's unit of result.

A :class:`RunRecord` is everything a sweep consumer needs from one
scenario execution — decode outcome, failure stage, bit error rate,
trace statistics and timing — plus the originating spec, so records are
self-describing: reports can group by any spec field without access to
the grid that produced them.

Outcome stages are named once here (:class:`RecordStage`) and shared by
every layer: the record stages in :data:`STAGES`, the per-node stages
of networked runs, and the receiver-pipeline stages that
:mod:`repro.core.pipeline` historically declared as its own enum.
:func:`make_record` is the one place record invariants (success, BER,
fused-field mirroring) are computed — all three execution drivers
build their records through it.

Equality deliberately excludes wall-clock timing: two runs of the same
resolved spec compare equal whether they executed serially, in a worker
pool, or on different machines.  :meth:`RunRecord.canonical_json` is the
byte-stable form used by determinism tests and the on-disk cache; the
opt-in :class:`StageTrace` profile rides in ``elapsed``-style territory
(serialized only with timing, excluded from equality), so profiling a
run never changes its canonical bytes.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Mapping

from ..exec.graph import StageTrace

__all__ = ["RecordStage", "RunRecord", "STAGES", "bit_error_rate",
           "make_record", "outcome_stage"]


class RecordStage(str, Enum):
    """Every named outcome stage, across all layers of the repo.

    A ``str`` subclass, so members serialize, compare and group
    exactly like the literal strings records always carried.  The
    first six members are the per-record pipeline outcomes
    (:data:`STAGES`); ``NODE_DROPPED``/``NO_DECODE`` label per-node
    rows of networked runs; the rest are the receiver-pipeline
    outcomes re-exported as :data:`repro.core.pipeline.PipelineStage`.
    """

    EXECUTOR_ERROR = "executor_error"
    SIMULATION_FAILED = "simulation_failed"
    PREAMBLE_NOT_FOUND = "preamble_not_found"
    DECODE_FAILED = "decode_failed"
    BIT_ERRORS = "bit_errors"
    DECODED = "decoded"
    # Per-node stages of networked records.
    NODE_DROPPED = "node_dropped"
    NO_DECODE = "no_decode"
    # Receiver-pipeline stages (repro.core.pipeline).
    SATURATED = "saturated"
    CLASSIFIED = "classified"
    COLLISION = "collision"
    FAILED = "failed"

    # Keep f-strings/%-formatting on the bare value across Python
    # versions ("decoded", never "RecordStage.DECODED").
    __str__ = str.__str__
    __format__ = str.__format__


#: Pipeline stages a scenario can end in, ordered by progress.
#: ``executor_error`` is runner-synthesized (per-scenario timeout,
#: crashed worker): the pipeline never ran at all, so such records are
#: never cached.
STAGES = (RecordStage.EXECUTOR_ERROR.value,
          RecordStage.SIMULATION_FAILED.value,
          RecordStage.PREAMBLE_NOT_FOUND.value,
          RecordStage.DECODE_FAILED.value,
          RecordStage.BIT_ERRORS.value,
          RecordStage.DECODED.value)


def bit_error_rate(sent: str, decoded: str) -> float:
    """BER of a decoded payload vs the sent one (1.0 for no decode).

    Mismatches plus the length difference, over the longer payload —
    the one definition every driver shares.
    """
    if not decoded:
        return 1.0
    n = max(len(sent), len(decoded))
    errors = sum(a != b for a, b in zip(sent, decoded))
    errors += abs(len(sent) - len(decoded))
    return errors / n


def outcome_stage(decoded: str, sent: str,
                  empty: "RecordStage | str" = RecordStage.BIT_ERRORS,
                  ) -> str:
    """The stage label for a decode payload vs the sent bits.

    Args:
        decoded: recovered payload ('' when nothing came back).
        sent: the physically encoded payload.
        empty: label for an empty payload.  Drivers labelling a decode
            that *returned* empty keep the default (``bit_errors``,
            the payload is simply wrong); the network layer labels an
            empty fused verdict ``decode_failed`` and an empty node
            report ``no_decode``.
    """
    if decoded == sent:
        return RecordStage.DECODED.value
    if decoded:
        return RecordStage.BIT_ERRORS.value
    return str(empty)


@dataclass
class RunRecord:
    """Outcome of executing one resolved :class:`ScenarioSpec`.

    Attributes:
        spec_hash: content hash of the resolved spec (cache key).
        spec: the resolved spec as a plain dict.
        seed: the concrete noise seed that ran.
        sent_bits: payload physically encoded on the tag.
        decoded_bits: what the decoder recovered ('' on failure).
        success: exact payload match.
        stage: how far the pipeline got (see :data:`STAGES`).
        ber: bit error rate vs the sent payload (1.0 when nothing
            decoded).
        n_samples: RSS samples in the captured pass.
        trace_duration_s: captured window length (simulated seconds).
        sample_rate_hz: concrete sampling rate used.
        noise_floor_lux: the scene's nominal ambient level.
        error: the simulator's error message when ``stage`` is
            ``simulation_failed``, or the runner's diagnosis when it is
            ``executor_error`` ('' otherwise).
        fault_events: injected-fault event counts by kind (e.g.
            ``chunks_dropped``, ``noise_bursts``) when the spec carried
            a fault plan; empty — and omitted from serialized records —
            for fault-free runs, so pre-fault records keep their exact
            bytes.
        nodes: per-node decode outcomes for networked runs
            (``spec["n_receivers"] > 1``): one dict per receiver with
            ``node_id``, ``position_m``, ``bits``, ``success``,
            ``confidence``, ``timestamp_s``, ``timestamp_source`` and
            ``stage``.  Empty for single-receiver runs.
        fused_bits: the network's fused payload verdict.  For
            single-receiver runs this mirrors ``decoded_bits`` so
            fusion columns aggregate uniformly across receiver counts.
        fused_success: fused payload matches ``sent_bits`` exactly.
        best_node_success: did *any* single node decode exactly?  (For
            single-receiver runs: same as ``success``.)
        fusion_gain: ``fused_success - best_node_success``.  The vote
            picks among node reports, so fused success implies some
            node decoded: the per-pass value is 0 (the network's
            verdict reached the any-node ceiling) or -1 (a node held
            the exact payload but the verdict missed it — outvoted by
            a wrong payload, or unreachable from the ``rx0`` query
            viewpoint in a ``partitioned`` topology).  The Section 6
            *improvement* is read from rates across receiver counts:
            fused rate at N receivers vs the N=1 baseline (see
            :func:`repro.analysis.sweep_fusion_gain`).
        speed_est_mps: the network's tracked speed estimate (None when
            no group fit — fewer than two distinct positions, or a
            garbled unfittable pass).
        speed_error: relative speed-estimate error
            ``|est - nominal| / nominal`` (None without an estimate).
        stream_chunks: chunks fed through the streaming runtime when
            the spec requested online replay (``stream_chunk > 0``);
            0 for offline decodes.
        onset_latency_s: sample-clock delay between the preamble's A
            peak and the streaming detector locking on (None when the
            run was offline, or the detector never locked).
        first_bit_latency_s: delay between the first data bit's last
            sample and its provisional online decision (None as above).
        verdict_latency_s: delay between the last data window and the
            final verdict emission (None for offline runs and for
            streamed runs whose decode produced no payload — a failed
            decode measured nothing).  All three
            latencies are sample-clock quantities — deterministic for
            a given spec, so they participate in record equality and
            the byte-stable cache form, unlike wall-clock timing.
        elapsed_s: wall-clock execution time (excluded from equality).
        stage_trace: per-stage wall time/counters when the run was
            profiled (``REPRO_EXEC_PROFILE`` / ``--profile``), else
            None.  Wall-clock instrumentation, so it is excluded from
            equality and from :meth:`canonical_json` like
            ``elapsed_s``.
    """

    spec_hash: str
    spec: dict[str, Any]
    seed: int
    sent_bits: str
    decoded_bits: str
    success: bool
    stage: str
    ber: float
    n_samples: int
    trace_duration_s: float
    sample_rate_hz: float
    noise_floor_lux: float
    error: str = ""
    fault_events: dict[str, int] = field(default_factory=dict)
    nodes: list[dict[str, Any]] = field(default_factory=list)
    fused_bits: str = ""
    fused_success: bool = False
    best_node_success: bool = False
    fusion_gain: float = 0.0
    speed_est_mps: float | None = None
    speed_error: float | None = None
    stream_chunks: int = 0
    onset_latency_s: float | None = None
    first_bit_latency_s: float | None = None
    verdict_latency_s: float | None = None
    elapsed_s: float = field(default=0.0, compare=False)
    stage_trace: StageTrace | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.stage not in STAGES:
            raise ValueError(f"stage must be one of {STAGES}, "
                             f"got {self.stage!r}")

    @property
    def networked(self) -> bool:
        """Whether this record came from a multi-receiver deployment."""
        return bool(self.nodes)

    @property
    def streamed(self) -> bool:
        """Whether this record came from an online streaming replay."""
        return self.stream_chunks > 0

    @property
    def faulted(self) -> bool:
        """Whether any injected fault actually fired during this run."""
        return bool(self.fault_events)

    def to_dict(self, include_timing: bool = True) -> dict[str, Any]:
        """Plain-dict form (JSON-safe).

        ``fault_events`` is omitted when empty, and ``stage_trace``
        when absent (or when timing is excluded), so unprofiled and
        fault-free records serialize byte-identically to records from
        before those features existed.
        """
        data = dataclasses.asdict(self)
        if not include_timing:
            data.pop("elapsed_s")
        if not data["fault_events"]:
            data.pop("fault_events")
        data.pop("stage_trace")  # asdict's naive copy; re-add canonically
        if include_timing and self.stage_trace is not None:
            data["stage_trace"] = self.stage_trace.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunRecord":
        """Inverse of :meth:`to_dict`; tolerates a missing timing.

        Records written before the fusion fields existed are
        single-receiver by construction, so the fused verdict mirrors
        the decode outcome (exactly what the executor stamps on fresh
        single-receiver records) — without this, pre-fusion records in
        a mixed results file would read as fused failures.
        """
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown record fields: {sorted(unknown)}")
        data = dict(data)
        if isinstance(data.get("stage_trace"), Mapping):
            data["stage_trace"] = StageTrace.from_dict(data["stage_trace"])
        if "fused_bits" not in data and not data.get("nodes"):
            data.setdefault("fused_bits", data.get("decoded_bits", ""))
            data.setdefault("fused_success", data.get("success", False))
            data.setdefault("best_node_success", data.get("success", False))
        return cls(**data)

    def canonical_json(self) -> str:
        """Byte-stable JSON excluding timing — the determinism contract:
        identical resolved specs must produce identical bytes regardless
        of worker count."""
        return json.dumps(self.to_dict(include_timing=False),
                          sort_keys=True, separators=(",", ":"))


def make_record(*, spec_hash: str, spec: dict[str, Any], seed: int,
                sent_bits: str, stage: "RecordStage | str",
                sample_rate_hz: float, decoded_bits: str = "",
                n_samples: int = 0, noise_floor_lux: float = 0.0,
                error: str = "",
                fault_events: Mapping[str, int] | None = None,
                nodes: list[dict[str, Any]] | None = None,
                best_node_success: bool | None = None,
                speed_est_mps: float | None = None,
                speed_error: float | None = None,
                elapsed_s: float = 0.0,
                stage_trace: StageTrace | None = None,
                **stream_fields: Any) -> RunRecord:
    """Build a :class:`RunRecord`, computing the derived invariants.

    The one construction path shared by all three drivers (and the
    runner's synthesized error records): success is the exact payload
    match, BER comes from :func:`bit_error_rate`, trace duration from
    the sample count, and the fused columns mirror the decode verdict
    — for networked runs ``decoded_bits`` *is* the fused payload and
    the caller supplies ``best_node_success``, which also yields the
    per-pass ``fusion_gain``.

    Extra keyword arguments (the streaming latency fields) pass
    through to the record unchanged.
    """
    success = decoded_bits == sent_bits
    best = success if best_node_success is None else bool(best_node_success)
    return RunRecord(
        spec_hash=spec_hash,
        spec=spec,
        seed=seed,
        sent_bits=sent_bits,
        decoded_bits=decoded_bits,
        success=success,
        stage=str(stage),
        ber=bit_error_rate(sent_bits, decoded_bits),
        n_samples=n_samples,
        trace_duration_s=n_samples / sample_rate_hz,
        sample_rate_hz=sample_rate_hz,
        noise_floor_lux=noise_floor_lux,
        error=error,
        fault_events=dict(fault_events) if fault_events else {},
        nodes=nodes if nodes is not None else [],
        fused_bits=decoded_bits,
        fused_success=success,
        best_node_success=best,
        fusion_gain=float(success) - float(best),
        speed_est_mps=speed_est_mps,
        speed_error=speed_error,
        elapsed_s=elapsed_s,
        stage_trace=stage_trace,
        **stream_fields,
    )
