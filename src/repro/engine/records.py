"""Run records: the engine's unit of result.

A :class:`RunRecord` is everything a sweep consumer needs from one
scenario execution — decode outcome, failure stage, bit error rate,
trace statistics and timing — plus the originating spec, so records are
self-describing: reports can group by any spec field without access to
the grid that produced them.

Equality deliberately excludes wall-clock timing: two runs of the same
resolved spec compare equal whether they executed serially, in a worker
pool, or on different machines.  :meth:`RunRecord.canonical_json` is the
byte-stable form used by determinism tests and the on-disk cache.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["RunRecord", "STAGES"]


#: Pipeline stages a scenario can end in, ordered by progress.
#: ``executor_error`` is runner-synthesized (per-scenario timeout,
#: crashed worker): the pipeline never ran at all, so such records are
#: never cached.
STAGES = ("executor_error", "simulation_failed", "preamble_not_found",
          "decode_failed", "bit_errors", "decoded")


@dataclass
class RunRecord:
    """Outcome of executing one resolved :class:`ScenarioSpec`.

    Attributes:
        spec_hash: content hash of the resolved spec (cache key).
        spec: the resolved spec as a plain dict.
        seed: the concrete noise seed that ran.
        sent_bits: payload physically encoded on the tag.
        decoded_bits: what the decoder recovered ('' on failure).
        success: exact payload match.
        stage: how far the pipeline got (see :data:`STAGES`).
        ber: bit error rate vs the sent payload (1.0 when nothing
            decoded).
        n_samples: RSS samples in the captured pass.
        trace_duration_s: captured window length (simulated seconds).
        sample_rate_hz: concrete sampling rate used.
        noise_floor_lux: the scene's nominal ambient level.
        error: the simulator's error message when ``stage`` is
            ``simulation_failed``, or the runner's diagnosis when it is
            ``executor_error`` ('' otherwise).
        fault_events: injected-fault event counts by kind (e.g.
            ``chunks_dropped``, ``noise_bursts``) when the spec carried
            a fault plan; empty — and omitted from serialized records —
            for fault-free runs, so pre-fault records keep their exact
            bytes.
        nodes: per-node decode outcomes for networked runs
            (``spec["n_receivers"] > 1``): one dict per receiver with
            ``node_id``, ``position_m``, ``bits``, ``success``,
            ``confidence``, ``timestamp_s``, ``timestamp_source`` and
            ``stage``.  Empty for single-receiver runs.
        fused_bits: the network's fused payload verdict.  For
            single-receiver runs this mirrors ``decoded_bits`` so
            fusion columns aggregate uniformly across receiver counts.
        fused_success: fused payload matches ``sent_bits`` exactly.
        best_node_success: did *any* single node decode exactly?  (For
            single-receiver runs: same as ``success``.)
        fusion_gain: ``fused_success - best_node_success``.  The vote
            picks among node reports, so fused success implies some
            node decoded: the per-pass value is 0 (the network's
            verdict reached the any-node ceiling) or -1 (a node held
            the exact payload but the verdict missed it — outvoted by
            a wrong payload, or unreachable from the ``rx0`` query
            viewpoint in a ``partitioned`` topology).  The Section 6
            *improvement* is read from rates across receiver counts:
            fused rate at N receivers vs the N=1 baseline (see
            :func:`repro.analysis.sweep_fusion_gain`).
        speed_est_mps: the network's tracked speed estimate (None when
            no group fit — fewer than two distinct positions, or a
            garbled unfittable pass).
        speed_error: relative speed-estimate error
            ``|est - nominal| / nominal`` (None without an estimate).
        stream_chunks: chunks fed through the streaming runtime when
            the spec requested online replay (``stream_chunk > 0``);
            0 for offline decodes.
        onset_latency_s: sample-clock delay between the preamble's A
            peak and the streaming detector locking on (None when the
            run was offline, or the detector never locked).
        first_bit_latency_s: delay between the first data bit's last
            sample and its provisional online decision (None as above).
        verdict_latency_s: delay between the last data window and the
            final verdict emission (None for offline runs and for
            streamed runs whose decode produced no payload — a failed
            decode measured nothing).  All three
            latencies are sample-clock quantities — deterministic for
            a given spec, so they participate in record equality and
            the byte-stable cache form, unlike wall-clock timing.
        elapsed_s: wall-clock execution time (excluded from equality).
    """

    spec_hash: str
    spec: dict[str, Any]
    seed: int
    sent_bits: str
    decoded_bits: str
    success: bool
    stage: str
    ber: float
    n_samples: int
    trace_duration_s: float
    sample_rate_hz: float
    noise_floor_lux: float
    error: str = ""
    fault_events: dict[str, int] = field(default_factory=dict)
    nodes: list[dict[str, Any]] = field(default_factory=list)
    fused_bits: str = ""
    fused_success: bool = False
    best_node_success: bool = False
    fusion_gain: float = 0.0
    speed_est_mps: float | None = None
    speed_error: float | None = None
    stream_chunks: int = 0
    onset_latency_s: float | None = None
    first_bit_latency_s: float | None = None
    verdict_latency_s: float | None = None
    elapsed_s: float = field(default=0.0, compare=False)

    def __post_init__(self) -> None:
        if self.stage not in STAGES:
            raise ValueError(f"stage must be one of {STAGES}, "
                             f"got {self.stage!r}")

    @property
    def networked(self) -> bool:
        """Whether this record came from a multi-receiver deployment."""
        return bool(self.nodes)

    @property
    def streamed(self) -> bool:
        """Whether this record came from an online streaming replay."""
        return self.stream_chunks > 0

    @property
    def faulted(self) -> bool:
        """Whether any injected fault actually fired during this run."""
        return bool(self.fault_events)

    def to_dict(self, include_timing: bool = True) -> dict[str, Any]:
        """Plain-dict form (JSON-safe).

        ``fault_events`` is omitted when empty so fault-free records
        serialize byte-identically to records from before fault
        injection existed.
        """
        data = dataclasses.asdict(self)
        if not include_timing:
            data.pop("elapsed_s")
        if not data["fault_events"]:
            data.pop("fault_events")
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunRecord":
        """Inverse of :meth:`to_dict`; tolerates a missing timing.

        Records written before the fusion fields existed are
        single-receiver by construction, so the fused verdict mirrors
        the decode outcome (exactly what the executor stamps on fresh
        single-receiver records) — without this, pre-fusion records in
        a mixed results file would read as fused failures.
        """
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown record fields: {sorted(unknown)}")
        data = dict(data)
        if "fused_bits" not in data and not data.get("nodes"):
            data.setdefault("fused_bits", data.get("decoded_bits", ""))
            data.setdefault("fused_success", data.get("success", False))
            data.setdefault("best_node_success", data.get("success", False))
        return cls(**data)

    def canonical_json(self) -> str:
        """Byte-stable JSON excluding timing — the determinism contract:
        identical resolved specs must produce identical bytes regardless
        of worker count."""
        return json.dumps(self.to_dict(include_timing=False),
                          sort_keys=True, separators=(",", ":"))
