"""Content-addressed result cache.

Records are stored one JSON file per resolved-spec hash, sharded by the
first two hex digits (``<root>/ab/<hash>.json``) so directories stay
small even for hundred-thousand-scenario sweeps.  Writes are atomic
(temp file + rename), which makes the cache safe to share between the
parallel workers of several concurrent sweeps: a reader either sees a
complete record or a miss, never a torn file.

Any spec change — a different seed, a nudged height, a new decoder —
changes the content hash and therefore misses the cache; stale entries
are never returned, only orphaned (and reclaimable via :meth:`clear`).
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from ..faults.retry import RetryExhausted, RetryPolicy
from .records import RunRecord

__all__ = ["CacheStats", "ResultCache"]


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache instance's lifetime.

    Attributes:
        hits: lookups that returned a record.
        misses: lookups that found nothing (or an unreadable file).
        writes: records persisted.
        write_retries: transient IO errors that a retry absorbed.
    """

    hits: int = 0
    misses: int = 0
    writes: int = 0
    write_retries: int = 0


class ResultCache:
    """Disk-backed spec-hash -> :class:`RunRecord` store.

    Args:
        root: cache directory (created if missing).
        retry_policy: bounded-retry policy for transient ``OSError``
            on writes (a shared cache on network storage hiccups;
            a busy tmpfs briefly runs out of inodes).  Default: three
            attempts, 10 ms base backoff.  Non-transient errors keep
            failing and propagate after the budget.
    """

    def __init__(self, root: str | Path,
                 retry_policy: RetryPolicy | None = None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()
        self.retry_policy = retry_policy or RetryPolicy(
            max_attempts=3, base_delay_s=0.01)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _read(self, key: str) -> RunRecord | None:
        """Parse the record under ``key``, or None when unreadable."""
        try:
            data = json.loads(self._path(key).read_text())
            return RunRecord.from_dict(data)
        except (OSError, ValueError, TypeError):
            return None

    def get(self, key: str) -> RunRecord | None:
        """The cached record for a spec hash, or None.

        Corrupt or half-written files count as misses rather than
        errors — the scenario simply re-executes and overwrites them.
        """
        record = self._read(key)
        if record is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return record

    def _write_atomic(self, path: Path, payload: str) -> None:
        """One atomic write attempt: temp file in-dir, then rename."""
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def put(self, record: RunRecord) -> None:
        """Persist a record atomically under its spec hash.

        Transient ``OSError`` (network-storage hiccup, inode pressure)
        is retried under :attr:`retry_policy`; a persistent error
        propagates as the original ``OSError`` once the budget is
        spent, so callers see the same exception type as before.
        """
        path = self._path(record.spec_hash)
        payload = json.dumps(record.to_dict())
        before = self.retry_policy.retries
        try:
            self.retry_policy.call(
                lambda: self._write_atomic(path, payload),
                retry_on=(OSError,))
        except RetryExhausted as exc:
            self.stats.write_retries += self.retry_policy.retries - before
            raise exc.last from exc
        self.stats.write_retries += self.retry_policy.retries - before
        self.stats.writes += 1

    def __contains__(self, key: str) -> bool:
        """Membership mirrors :meth:`get`: a corrupt or torn file that
        ``get`` would treat as a miss is not "in" the cache either."""
        return self._read(key) is not None

    def __len__(self) -> int:
        """Entry *files* on disk — a cheap count that, unlike the
        parsing ``in``/``get``, may include unreadable entries."""
        return sum(1 for _ in self.root.glob("??/*.json"))

    def clear(self) -> int:
        """Delete every cached record; returns how many were removed."""
        removed = 0
        for path in self.root.glob("??/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
