"""Content-addressed result cache, behind a pluggable backend.

:class:`CacheBackend` is the protocol the batch runner talks to; two
implementations ship:

* :class:`ResultCache` — one JSON file per resolved-spec hash, sharded
  by the first two hex digits (``<root>/ab/<hash>.json``) so
  directories stay small even for hundred-thousand-scenario sweeps.
  Writes are atomic (temp file + rename), which makes the cache safe
  to share between the parallel workers of several concurrent sweeps:
  a reader either sees a complete record or a miss, never a torn file.
* :class:`SqliteResultCache` — a single SQLite database in WAL mode
  (``<root>/records.sqlite``): one inode instead of one per record,
  and safe under concurrent writers because record payloads are
  deterministic per key, so last-writer-wins upserts are idempotent.

Both keep the same content-hash keys and byte-identical record
payloads — a sweep's records do not depend on which backend cached
them.  :func:`open_cache` selects a backend by name (CLI
``--cache-backend``, or the ``REPRO_CACHE_BACKEND`` environment
variable for CI legs).

Any spec change — a different seed, a nudged height, a new decoder —
changes the content hash and therefore misses the cache; stale entries
are never returned, only orphaned (and reclaimable via ``clear``).
"""

from __future__ import annotations

import json
import os
import sqlite3
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Protocol, runtime_checkable

from ..faults.retry import RetryExhausted, RetryPolicy
from ..obs.events import active_events
from ..obs.registry import MetricsRegistry, active_registry
from .records import RunRecord

__all__ = ["BACKEND_ENV", "CACHE_BACKENDS", "CacheBackend", "CacheStats",
           "ResultCache", "SqliteResultCache", "open_cache"]

#: Recognised backend names, in default-preference order.
CACHE_BACKENDS = ("disk", "sqlite")

#: Environment override consulted when no backend is named explicitly
#: (CI legs run whole suites against one backend through this).
BACKEND_ENV = "REPRO_CACHE_BACKEND"

_HEX = set("0123456789abcdef")


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache instance's lifetime.

    Attributes:
        hits: lookups that returned a record.
        misses: lookups that found nothing (or an unreadable file).
        writes: records persisted.
        write_retries: transient IO errors that a retry absorbed.
    """

    hits: int = 0
    misses: int = 0
    writes: int = 0
    write_retries: int = 0

    def to_metrics(self, registry: MetricsRegistry,
                   backend: str = "unknown") -> None:
        """Fold lifetime totals into ``registry`` (common stats shape).

        One-shot: callers fold a stats object at most once per
        lifetime, or the totals double-count.  Live runs instead use
        the incremental per-lookup instrumentation below.
        """
        lookups = registry.counter
        lookups("cache_lookups_total",
                {"backend": backend, "result": "hit"}).inc(self.hits)
        lookups("cache_lookups_total",
                {"backend": backend, "result": "miss"}).inc(self.misses)
        lookups("cache_writes_total", {"backend": backend}).inc(self.writes)
        lookups("cache_write_retries_total",
                {"backend": backend}).inc(self.write_retries)


def _observe_lookup(backend: str, key: str, hit: bool) -> None:
    """Incremental telemetry for one cache lookup (no-op when off)."""
    registry = active_registry()
    if registry is not None:
        registry.counter("cache_lookups_total",
                         {"backend": backend,
                          "result": "hit" if hit else "miss"}).inc()
    log = active_events()
    if log is not None:
        log.emit("cache_hit" if hit else "cache_miss",
                 backend=backend, key=key)


def _observe_write(backend: str, retries: int) -> None:
    """Incremental telemetry for one cache write (no-op when off)."""
    registry = active_registry()
    if registry is None:
        return
    registry.counter("cache_writes_total", {"backend": backend}).inc()
    if retries:
        registry.counter("cache_write_retries_total",
                         {"backend": backend}).inc(retries)


@runtime_checkable
class CacheBackend(Protocol):
    """What the batch runner requires of a result cache.

    Keyed by resolved-spec content hash; values are complete
    :class:`RunRecord` payloads.  Implementations must treat corrupt
    or torn entries as misses (the scenario re-executes and
    overwrites), and must expose a :class:`CacheStats` instance as
    ``stats``.
    """

    stats: CacheStats

    def get(self, key: str) -> RunRecord | None:
        """The cached record for a spec hash, or None."""
        ...

    def put(self, record: RunRecord) -> None:
        """Persist a record under its spec hash."""
        ...

    def __contains__(self, key: str) -> bool:
        ...

    def __len__(self) -> int:
        ...

    def clear(self) -> int:
        """Delete every cached record; returns how many were removed."""
        ...


class ResultCache:
    """Disk-backed spec-hash -> :class:`RunRecord` store.

    Args:
        root: cache directory (created if missing).
        retry_policy: bounded-retry policy for transient ``OSError``
            on writes (a shared cache on network storage hiccups;
            a busy tmpfs briefly runs out of inodes).  Default: three
            attempts, 10 ms base backoff.  Non-transient errors keep
            failing and propagate after the budget.
    """

    #: Telemetry label for this backend.
    backend_name = "disk"

    def __init__(self, root: str | Path,
                 retry_policy: RetryPolicy | None = None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()
        self.retry_policy = retry_policy or RetryPolicy(
            max_attempts=3, base_delay_s=0.01)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _entries(self) -> Iterator[Path]:
        """Paths that are actually record entries.

        A record lives at ``<root>/<hh>/<64-hex-hash>.json`` with the
        shard matching the hash prefix; anything else in the tree — a
        stray notes file, a foreign ``.json``, a leftover editor
        buffer — is not ours and is never counted or deleted.
        """
        for path in self.root.glob("??/*.json"):
            stem = path.stem
            if (len(stem) == 64 and stem.startswith(path.parent.name)
                    and set(stem) <= _HEX):
                yield path

    def _read(self, key: str) -> RunRecord | None:
        """Parse the record under ``key``, or None when unreadable."""
        try:
            data = json.loads(self._path(key).read_text())
            return RunRecord.from_dict(data)
        except (OSError, ValueError, TypeError):
            return None

    def get(self, key: str) -> RunRecord | None:
        """The cached record for a spec hash, or None.

        Corrupt or half-written files count as misses rather than
        errors — the scenario simply re-executes and overwrites them.
        """
        record = self._read(key)
        _observe_lookup(self.backend_name, key, hit=record is not None)
        if record is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return record

    def _write_atomic(self, path: Path, payload: str) -> None:
        """One atomic write attempt: temp file in-dir, then rename."""
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def put(self, record: RunRecord) -> None:
        """Persist a record atomically under its spec hash.

        Transient ``OSError`` (network-storage hiccup, inode pressure)
        is retried under :attr:`retry_policy`; a persistent error
        propagates as the original ``OSError`` once the budget is
        spent, so callers see the same exception type as before.
        """
        path = self._path(record.spec_hash)
        payload = json.dumps(record.to_dict())
        before = self.retry_policy.retries
        try:
            self.retry_policy.call(
                lambda: self._write_atomic(path, payload),
                retry_on=(OSError,))
        except RetryExhausted as exc:
            self.stats.write_retries += self.retry_policy.retries - before
            raise exc.last from exc
        self.stats.write_retries += self.retry_policy.retries - before
        self.stats.writes += 1
        _observe_write(self.backend_name,
                       self.retry_policy.retries - before)

    def __contains__(self, key: str) -> bool:
        """Membership mirrors :meth:`get`: a corrupt or torn file that
        ``get`` would treat as a miss is not "in" the cache either."""
        return self._read(key) is not None

    def __len__(self) -> int:
        """Entry *files* on disk — a cheap count that, unlike the
        parsing ``in``/``get``, may include unreadable entries but
        never foreign files (see :meth:`_entries`)."""
        return sum(1 for _ in self._entries())

    def clear(self) -> int:
        """Delete every cached record; returns how many were removed.

        Only record entries are touched — foreign files that happen to
        live under the cache root are left alone.
        """
        removed = 0
        for path in self._entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


class SqliteResultCache:
    """SQLite-backed spec-hash -> :class:`RunRecord` store.

    One ``records.sqlite`` database under ``root``, in WAL mode so
    readers never block the writer and concurrent sweeps sharing the
    cache serialize on short row upserts instead of whole-file locks.
    Record payloads are deterministic per key (the engine's
    determinism contract), so ``INSERT OR REPLACE`` under concurrent
    writers is idempotent — last writer wins with identical bytes.

    Args:
        root: cache directory (created if missing); the database file
            lives inside it, so ``--cache-dir`` means the same thing
            for both backends.
        retry_policy: bounded-retry policy for transient write
            failures (``sqlite3.OperationalError`` — e.g. a lock
            still held past the busy timeout — and ``OSError``).
            Default: three attempts, 10 ms base backoff.
    """

    #: Database filename under the cache root.
    FILENAME = "records.sqlite"

    #: Telemetry label for this backend.
    backend_name = "sqlite"

    def __init__(self, root: str | Path,
                 retry_policy: RetryPolicy | None = None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()
        self.retry_policy = retry_policy or RetryPolicy(
            max_attempts=3, base_delay_s=0.01)
        self.path = self.root / self.FILENAME
        self._conn = sqlite3.connect(self.path, timeout=5.0)
        # Two processes opening a fresh cache race on the WAL switch:
        # changing the journal mode takes an exclusive lock and can
        # report "database is locked" immediately rather than honouring
        # the busy timeout, so first-open initialization retries under
        # the same bounded policy as writes.
        try:
            self.retry_policy.call(self._init_schema,
                                   retry_on=(sqlite3.OperationalError,))
        except RetryExhausted as exc:
            raise exc.last from exc

    def _init_schema(self) -> None:
        """One attempt at the first-open pragmas and table DDL."""
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS records ("
            "key TEXT PRIMARY KEY, payload TEXT NOT NULL)")
        self._conn.commit()

    def get(self, key: str) -> RunRecord | None:
        """The cached record for a spec hash, or None.

        An unparsable payload counts as a miss, mirroring the disk
        backend's treatment of corrupt files.
        """
        try:
            row = self._conn.execute(
                "SELECT payload FROM records WHERE key = ?",
                (key,)).fetchone()
            record = (RunRecord.from_dict(json.loads(row[0]))
                      if row is not None else None)
        except (sqlite3.Error, ValueError, TypeError):
            record = None
        _observe_lookup(self.backend_name, key, hit=record is not None)
        if record is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return record

    def _upsert(self, key: str, payload: str) -> None:
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO records (key, payload) "
                "VALUES (?, ?)", (key, payload))

    def put(self, record: RunRecord) -> None:
        """Persist a record under its spec hash.

        Transient failures (a writer lock outlasting the busy
        timeout) are retried under :attr:`retry_policy`; a persistent
        error propagates as the original exception once the budget is
        spent.
        """
        payload = json.dumps(record.to_dict())
        before = self.retry_policy.retries
        try:
            self.retry_policy.call(
                lambda: self._upsert(record.spec_hash, payload),
                retry_on=(sqlite3.OperationalError, OSError))
        except RetryExhausted as exc:
            self.stats.write_retries += self.retry_policy.retries - before
            raise exc.last from exc
        self.stats.write_retries += self.retry_policy.retries - before
        self.stats.writes += 1
        _observe_write(self.backend_name,
                       self.retry_policy.retries - before)

    def __contains__(self, key: str) -> bool:
        """Membership mirrors :meth:`get` (and the disk backend): an
        unparsable stored payload is not "in" the cache."""
        try:
            payload = self.get_payload(key)
            if payload is None:
                return False
            return RunRecord.from_dict(json.loads(payload)) is not None
        except (sqlite3.Error, ValueError, TypeError):
            return False

    def get_payload(self, key: str) -> str | None:
        """The raw stored JSON for a key (tests and diagnostics)."""
        row = self._conn.execute(
            "SELECT payload FROM records WHERE key = ?", (key,)).fetchone()
        return row[0] if row is not None else None

    def __len__(self) -> int:
        return int(self._conn.execute(
            "SELECT COUNT(*) FROM records").fetchone()[0])

    def clear(self) -> int:
        """Delete every cached record; returns how many were removed."""
        with self._conn:
            cursor = self._conn.execute("DELETE FROM records")
        return cursor.rowcount

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        try:
            self._conn.close()
        except sqlite3.Error:  # pragma: no cover - close is best-effort
            pass

    def __del__(self) -> None:  # pragma: no cover - GC timing
        self.close()


def open_cache(root: str | Path, backend: str | None = None,
               retry_policy: RetryPolicy | None = None) -> CacheBackend:
    """Open a result cache at ``root`` with the named backend.

    Args:
        root: cache directory.
        backend: ``"disk"`` or ``"sqlite"``; None consults the
            ``REPRO_CACHE_BACKEND`` environment variable and falls
            back to ``"disk"``.
        retry_policy: forwarded to the backend.

    Raises:
        ValueError: on an unrecognised backend name.
    """
    name = backend if backend is not None else (
        os.environ.get(BACKEND_ENV, "").strip().lower() or "disk")
    if name not in CACHE_BACKENDS:
        raise ValueError(f"cache backend must be one of {CACHE_BACKENDS}, "
                         f"got {name!r}")
    if name == "sqlite":
        return SqliteResultCache(root, retry_policy=retry_policy)
    return ResultCache(root, retry_policy=retry_policy)
