"""Deterministic fault injection over traces, chunk feeds and nodes.

Every injector takes an explicit :class:`numpy.random.Generator` built
by :func:`fault_rng` from the spec's resolved noise seed, the plan
content, and a *role* string, so

* each fault layer (signal, stream, per-node) owns an independent
  stream of draws — enabling one layer never shifts another's draws;
* the same spec reproduces the same corruption bytes anywhere (serial,
  worker pools, cold or warm cache);
* an empty plan consumes **zero** draws and returns its input
  untouched, keeping fault-free runs byte-identical to pre-fault code.

Injectors return a :class:`FaultLog` of what actually fired, which the
executor folds into ``RunRecord.fault_events`` for reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Iterable, Sequence

import numpy as np

from ..channel.trace import SignalTrace
from ..engine.spec import derive_seed
from .plan import FaultPlan

__all__ = ["FaultLog", "fault_rng", "apply_signal_faults",
           "perturb_chunks", "node_fault_roll", "intermittent_window"]


def fault_rng(role: str, spec_seed: int, plan: FaultPlan) -> np.random.Generator:
    """An independent, deterministic generator for one fault layer.

    Args:
        role: which layer draws from it (``"signal"``, ``"stream"``,
            ``"node:3"`` ...) — distinct roles get well-separated
            streams.
        spec_seed: the resolved scenario's noise seed.
        plan: the fault plan (its content perturbs the stream, so
            changing any knob redraws everything — no accidental
            correlation between a 10% and an 11% plan).
    """
    token = f"fault:{role}:{spec_seed}:{plan.canonical_json()}"
    return np.random.Generator(np.random.PCG64(derive_seed(token)))


@dataclass
class FaultLog:
    """What one injection pass actually did.

    Attributes mirror the fault processes; ``counts()`` flattens the
    nonzero ones into the JSON-safe dict records carry.
    """

    chunks_dropped: int = 0
    chunks_duplicated: int = 0
    chunks_delayed: int = 0
    chunks_reordered: int = 0
    noise_bursts: int = 0
    dropouts: int = 0
    samples_saturated: int = 0
    clock_drift: int = 0
    nodes_dropped: int = 0
    nodes_intermittent: int = 0

    def merge(self, other: "FaultLog") -> "FaultLog":
        """Accumulate another log into this one (returns self)."""
        for f in fields(self):
            setattr(self, f.name,
                    getattr(self, f.name) + getattr(other, f.name))
        return self

    def counts(self) -> dict[str, int]:
        """Nonzero event counts — empty for a no-op injection, so
        fault-free records keep an empty ``fault_events`` dict."""
        return {f.name: getattr(self, f.name) for f in fields(self)
                if getattr(self, f.name)}

    @property
    def total(self) -> int:
        """Total fault events across every process."""
        return sum(getattr(self, f.name) for f in fields(self))

    def to_metrics(self, registry) -> None:
        """Fold injection counts into ``registry`` (common stats shape).

        One ``fault_injections_total{kind=...}`` counter per nonzero
        fault process.  One-shot per log instance, like the other
        ``to_metrics`` implementations.
        """
        for kind, count in self.counts().items():
            registry.counter("fault_injections_total",
                             {"kind": kind}).inc(count)


# ----------------------------------------------------------------------
# Signal-layer faults
# ----------------------------------------------------------------------

def _apply_clock_drift(x: np.ndarray, rate_hz: float,
                       ppm: float) -> np.ndarray:
    """Resample as if the ADC clock ran fast/slow by ``ppm``.

    Sample ``i`` is read at true time ``i * (1 + d) / rate``: a fast
    clock (positive drift) sweeps past the true waveform, compressing
    it; the trace keeps its nominal rate and length, as a real logger
    with a skewed crystal would.
    """
    n = len(x)
    if n < 2:
        return x
    idx = np.arange(n, dtype=float)
    src = np.clip(idx * (1.0 + ppm * 1e-6), 0.0, n - 1.0)
    return np.interp(src, idx, x)


def _event_windows(rng: np.random.Generator, n: int, rate_hz: float,
                   length_s: float, sample_rate_hz: float,
                   ) -> list[tuple[int, int]]:
    """Poisson-count event windows as (start, stop) sample slices."""
    duration_s = n / sample_rate_hz
    count = int(rng.poisson(rate_hz * duration_s))
    length = max(1, int(round(length_s * sample_rate_hz)))
    windows = []
    for _ in range(count):
        start = int(rng.integers(0, n))
        windows.append((start, min(n, start + length)))
    return windows


def apply_signal_faults(trace: SignalTrace, plan: FaultPlan,
                        rng: np.random.Generator,
                        ) -> tuple[SignalTrace, FaultLog]:
    """Corrupt one captured trace per the plan's signal-layer knobs.

    Order models the physical chain: clock drift (the ADC timebase),
    sample dropouts (stalled reads hold the last good value), burst
    noise (interference adds on top), then sensor saturation (the
    front end clips last).  Each stage draws only when active, so an
    empty plan is a byte-for-byte no-op.
    """
    log = FaultLog()
    if not plan.signals:
        return trace, log
    x = np.array(trace.samples, dtype=float, copy=True)
    n = len(x)
    if n == 0:
        return trace, log
    rate = trace.sample_rate_hz

    if plan.clock_drift_ppm != 0.0:
        x = _apply_clock_drift(x, rate, plan.clock_drift_ppm)
        log.clock_drift = 1

    if plan.dropout_rate_hz > 0.0:
        for start, stop in _event_windows(rng, n, plan.dropout_rate_hz,
                                          plan.dropout_length_s, rate):
            x[start:stop] = x[start - 1] if start > 0 else x[0]
            log.dropouts += 1

    if plan.burst_rate_hz > 0.0:
        swing = float(x.max() - x.min())
        sigma = plan.burst_gain * (swing if swing > 0.0 else 1.0)
        for start, stop in _event_windows(rng, n, plan.burst_rate_hz,
                                          plan.burst_length_s, rate):
            x[start:stop] += rng.normal(0.0, sigma, stop - start)
            log.noise_bursts += 1

    if plan.saturate_fraction > 0.0:
        lo, hi = float(x.min()), float(x.max())
        if hi > lo:
            clip_level = lo + (1.0 - plan.saturate_fraction) * (hi - lo)
            saturated = int(np.count_nonzero(x > clip_level))
            if saturated:
                np.clip(x, None, clip_level, out=x)
                log.samples_saturated = saturated

    faulted = SignalTrace(x, trace.sample_rate_hz, trace.start_time_s,
                          dict(trace.meta, fault_injected=True))
    return faulted, log


# ----------------------------------------------------------------------
# Stream-layer faults
# ----------------------------------------------------------------------

def perturb_chunks(chunks: Iterable[np.ndarray], plan: FaultPlan,
                   rng: np.random.Generator,
                   ) -> tuple[list[np.ndarray], FaultLog]:
    """Corrupt a chunk feed's transport: drop, duplicate, delay, swap.

    Stages run in a fixed order (loss -> duplication -> delay ->
    adjacent reorder), each drawing per chunk only when its probability
    is nonzero, so the perturbation is deterministic for a given rng
    and an all-zero plan returns the input chunks unchanged (same
    objects, no copies).
    """
    out = [np.asarray(c) for c in chunks]
    log = FaultLog()
    if not plan.streams:
        return out, log

    if plan.chunk_drop > 0.0 or plan.chunk_duplicate > 0.0:
        kept: list[np.ndarray] = []
        for chunk in out:
            if plan.chunk_drop > 0.0 and rng.random() < plan.chunk_drop:
                log.chunks_dropped += 1
                continue
            kept.append(chunk)
            if (plan.chunk_duplicate > 0.0
                    and rng.random() < plan.chunk_duplicate):
                kept.append(chunk)
                log.chunks_duplicated += 1
        out = kept

    if plan.chunk_delay > 0.0 and len(out) > 1:
        # A delayed chunk slips ``delay_chunks`` positions; the stable
        # sort keeps everything else in arrival order.
        keys = []
        for i in range(len(out)):
            delayed = rng.random() < plan.chunk_delay
            if delayed:
                log.chunks_delayed += 1
            keys.append(i + (plan.delay_chunks if delayed else 0))
        order = sorted(range(len(out)), key=lambda i: (keys[i], i))
        out = [out[i] for i in order]

    if plan.chunk_reorder > 0.0:
        i = 0
        while i + 1 < len(out):
            if rng.random() < plan.chunk_reorder:
                out[i], out[i + 1] = out[i + 1], out[i]
                log.chunks_reordered += 1
                i += 2
            else:
                i += 1

    return out, log


# ----------------------------------------------------------------------
# Node-layer faults
# ----------------------------------------------------------------------

def node_fault_roll(plan: FaultPlan, rng: np.random.Generator) -> str:
    """One receiver node's fate for this pass.

    Returns ``"dropped"`` (silent node), ``"intermittent"`` (partial
    capture) or ``"ok"``.  Dropout is rolled first — a dead node cannot
    also be intermittent — and each roll happens only when its
    probability is nonzero, keeping draw streams stable as knobs are
    enabled independently.
    """
    if plan.node_dropout > 0.0 and rng.random() < plan.node_dropout:
        return "dropped"
    if (plan.node_intermittent > 0.0
            and rng.random() < plan.node_intermittent):
        return "intermittent"
    return "ok"


def intermittent_window(trace: SignalTrace, plan: FaultPlan,
                        rng: np.random.Generator) -> SignalTrace:
    """The contiguous partial capture an intermittent node retains.

    Keeps ``intermittent_fraction`` of the pass (at least 8 samples) at
    a uniformly drawn offset, with the window's true timestamps — the
    fusion layer sees a correctly anchored but incomplete report.
    """
    n = len(trace.samples)
    keep = min(n, max(8, int(round(plan.intermittent_fraction * n))))
    if keep >= n:
        return trace
    offset = int(rng.integers(0, n - keep + 1))
    return SignalTrace(
        np.array(trace.samples[offset:offset + keep], copy=True),
        trace.sample_rate_hz,
        trace.start_time_s + offset / trace.sample_rate_hz,
        dict(trace.meta, fault_intermittent=True))
