"""Deterministic fault injection and runtime resilience.

Two halves of one robustness story:

* **The fault plane** — :class:`FaultPlan` (declarative, validated,
  hashable corruption riding on a scenario spec) and the injectors in
  :mod:`repro.faults.inject` that corrupt captured traces, chunk
  transport, and receiver nodes deterministically from spec-derived
  seeds.  Empty plan, empty change: fault-free runs stay byte-identical.
* **The resilience layer** — :class:`RetryPolicy` (capped exponential
  backoff with seeded jitter, shared by the batch runner's pool
  recovery and the result cache's IO retries) and the chaos sweep
  harness in :mod:`repro.faults.chaos` that measures decode success
  against fault intensity (``repro-engine chaos``).

Engine-facing modules import the submodules directly
(``repro.faults.plan``, ``repro.faults.inject``) to keep the import
graph acyclic; this package namespace is for interactive use.
"""

from .plan import FaultPlan
from .retry import RetryExhausted, RetryPolicy

#: Lazily exposed names -> defining submodule.  ``inject`` and ``chaos``
#: import engine modules, and ``repro.engine.spec`` imports
#: ``repro.faults.plan`` (which runs this package __init__) — loading
#: them eagerly here would close an import cycle mid-initialisation.
_LAZY = {
    "FaultLog": "inject",
    "apply_signal_faults": "inject",
    "fault_rng": "inject",
    "intermittent_window": "inject",
    "node_fault_roll": "inject",
    "perturb_chunks": "inject",
    "ChaosPoint": "chaos",
    "ChaosSweep": "chaos",
    "sweep_fault_intensity": "chaos",
}


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        module = importlib.import_module(f".{_LAZY[name]}", __name__)
        value = getattr(module, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY))


__all__ = [
    "FaultPlan",
    "FaultLog",
    "RetryPolicy",
    "RetryExhausted",
    "fault_rng",
    "apply_signal_faults",
    "perturb_chunks",
    "node_fault_roll",
    "intermittent_window",
    "ChaosPoint",
    "ChaosSweep",
    "sweep_fault_intensity",
]
