"""Reusable retry policy: capped exponential backoff with seeded jitter.

Every resilience seam in the engine — worker-pool recovery in
:class:`~repro.engine.BatchRunner`, transient-IO retries in
:class:`~repro.engine.ResultCache` — needs the same three decisions:
how many attempts, how long to wait between them, and how to jitter the
waits so colliding retriers de-synchronise.  :class:`RetryPolicy` makes
those decisions data, and makes the jitter **deterministic**: it is
drawn from a seeded generator, so a retried batch remains reproducible
end to end (the determinism contract extends into the failure paths).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, TypeVar

import numpy as np

__all__ = ["RetryPolicy", "RetryExhausted"]

T = TypeVar("T")


class RetryExhausted(RuntimeError):
    """Every attempt a :class:`RetryPolicy` allowed has failed.

    Attributes:
        attempts: how many attempts ran.
        last: the exception the final attempt raised.
    """

    def __init__(self, attempts: int, last: BaseException) -> None:
        super().__init__(
            f"all {attempts} attempts failed; last error: "
            f"{type(last).__name__}: {last}")
        self.attempts = attempts
        self.last = last


@dataclass
class RetryPolicy:
    """Capped exponential backoff with deterministic jitter.

    Attempt ``k`` (0-based) that fails waits
    ``min(cap_delay_s, base_delay_s * backoff**k) * (1 + U[-jitter, +jitter])``
    before attempt ``k + 1``, where ``U`` is drawn from a generator
    seeded with ``seed`` — the same policy instance replays the same
    waits, so retried runs stay byte-reproducible.

    Attributes:
        max_attempts: total attempts allowed, >= 1 (1 = no retry).
        base_delay_s: first backoff wait; 0 retries immediately.
        backoff: multiplier per attempt, >= 1.
        cap_delay_s: upper bound on any single wait.
        jitter: relative wait perturbation in [0, 1).
        seed: jitter generator seed.
        attempts_made: attempts started through :meth:`call` over this
            instance's lifetime.
        retries: failed attempts that were retried.
        total_wait_s: backoff time actually slept.
    """

    max_attempts: int = 2
    base_delay_s: float = 0.0
    backoff: float = 2.0
    cap_delay_s: float = 30.0
    jitter: float = 0.0
    seed: int = 0
    attempts_made: int = field(default=0, compare=False)
    retries: int = field(default=0, compare=False)
    total_wait_s: float = field(default=0.0, compare=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay_s < 0.0:
            raise ValueError(
                f"base_delay_s must be >= 0, got {self.base_delay_s}")
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {self.backoff}")
        if self.cap_delay_s < 0.0:
            raise ValueError(
                f"cap_delay_s must be >= 0, got {self.cap_delay_s}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")
        self._rng = np.random.Generator(np.random.PCG64(self.seed))

    # ------------------------------------------------------------------
    def delay_s(self, attempt: int) -> float:
        """The wait after failed attempt ``attempt`` (0-based), jittered.

        Consumes one jitter draw per call, so successive delays for the
        same attempt index differ (they are successive retrier waits),
        while a fresh policy with the same seed replays the identical
        sequence.
        """
        if attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {attempt}")
        base = min(self.cap_delay_s,
                   self.base_delay_s * self.backoff ** attempt)
        if base <= 0.0:
            return 0.0
        if self.jitter == 0.0:
            return base
        factor = 1.0 + float(self._rng.uniform(-self.jitter, self.jitter))
        return base * factor

    def delays(self) -> list[float]:
        """Every backoff wait a full retry cycle would sleep, in order."""
        return [self.delay_s(k) for k in range(self.max_attempts - 1)]

    # ------------------------------------------------------------------
    def call(self, fn: Callable[[], T],
             retry_on: tuple[type[BaseException], ...] = (Exception,),
             sleep: Callable[[float], None] = time.sleep) -> T:
        """Run ``fn`` under this policy; return its first success.

        Args:
            fn: zero-argument callable to attempt.
            retry_on: exception types that trigger a retry; anything
                else propagates immediately.
            sleep: the wait primitive (injectable for tests).

        Raises:
            RetryExhausted: when the final attempt fails with a
                retryable error (the original is chained as its
                ``last`` / ``__cause__``).
        """
        from ..obs.events import active_events
        from ..obs.registry import active_registry

        last: BaseException | None = None
        for attempt in range(self.max_attempts):
            self.attempts_made += 1
            try:
                return fn()
            except retry_on as exc:
                last = exc
                if attempt == self.max_attempts - 1:
                    break
                self.retries += 1
                registry = active_registry()
                if registry is not None:
                    registry.counter(
                        "retry_attempts_total",
                        {"error": type(exc).__name__}).inc()
                log = active_events()
                if log is not None:
                    log.emit("retry", attempt=attempt,
                             error=type(exc).__name__)
                wait = self.delay_s(attempt)
                if wait > 0.0:
                    self.total_wait_s += wait
                    sleep(wait)
        registry = active_registry()
        if registry is not None:
            registry.counter(
                "retry_exhausted_total",
                {"error": type(last).__name__}).inc()
        log = active_events()
        if log is not None:
            log.emit("retry_exhausted", attempts=self.max_attempts,
                     error=type(last).__name__)
        raise RetryExhausted(self.max_attempts, last) from last
