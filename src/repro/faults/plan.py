"""Deterministic fault plans: corruption as declarative, hashable data.

The paper's system decodes passive tags from moving vehicles in hostile
conditions — occlusion, saturation, flaky receivers, lossy capture.  A
:class:`FaultPlan` describes such hostility as plain data riding on a
:class:`~repro.engine.ScenarioSpec`: which fault processes run, at what
rates, with what shapes.  Like the noise field, every fault draw is
seeded from the spec content, so

* the same spec (seed + plan) produces a **byte-identical corrupted
  run** on any worker count, host, or cache state, and
* an empty plan (or none at all) leaves every output byte-identical to
  a fault-free run.

The plan deliberately does *not* perturb the derived noise seed (the
same contract as ``stream_chunk``): faults corrupt the captured pass
and its transport, never the underlying physics, so a chaos sweep
measures degradation **on the same passes** the clean run decoded.

This module is dependency-free (no engine imports) so the spec layer
can import it without cycles; the injection machinery lives in
:mod:`repro.faults.inject`.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any, Mapping

__all__ = ["FaultPlan", "PROBABILITY_FIELDS", "RATE_FIELDS"]


#: Per-event probabilities in [0, 1]; scaled linearly by
#: :meth:`FaultPlan.scaled` and clipped back into range.
PROBABILITY_FIELDS = ("chunk_drop", "chunk_duplicate", "chunk_reorder",
                      "chunk_delay", "node_dropout", "node_intermittent")

#: Unbounded intensity knobs (events per second, clip depth, clock
#: skew); scaled linearly by :meth:`FaultPlan.scaled`.
RATE_FIELDS = ("burst_rate_hz", "dropout_rate_hz", "saturate_fraction",
               "clock_drift_ppm")


@dataclass(frozen=True)
class FaultPlan:
    """One scenario's fault processes, as data.

    Stream-layer faults (chunk transport into the streaming runtime):

    Attributes:
        chunk_drop: probability each ingest chunk is lost in transport.
        chunk_duplicate: probability each surviving chunk arrives twice.
        chunk_reorder: probability each adjacent chunk pair is swapped.
        chunk_delay: probability a chunk is held back and delivered
            ``delay_chunks`` positions late.
        delay_chunks: how many positions a delayed chunk slips.

    Signal-layer faults (the captured :class:`SignalTrace` itself):

        burst_rate_hz: expected burst-noise events per second of trace.
        burst_length_s: duration of each noise burst.
        burst_gain: burst noise standard deviation as a fraction of the
            trace's peak-to-peak swing.
        saturate_fraction: sensor saturation — clip the top fraction of
            the trace's dynamic range (0 = off, 0.3 = the top 30% of
            the swing flattens to the clip level).
        dropout_rate_hz: expected sample-dropout events per second; a
            dropout holds the last good value (a stalled sensor read).
        dropout_length_s: duration of each dropout.
        clock_drift_ppm: receiver clock skew in parts per million — the
            trace is resampled as if the ADC clock ran fast (positive)
            or slow (negative) by this much.

    Node-layer faults (multi-receiver arrays, ``n_receivers > 1``):

        node_dropout: probability each receiver node is silent for the
            pass (no capture, no detection — the fusion layer simply
            sees fewer reports).
        node_intermittent: probability each surviving node captures
            only an intermittent window of the pass.
        intermittent_fraction: fraction of the pass an intermittent
            node retains (a contiguous window at a drawn offset).

    Execution pathology (chaos harness for runner timeouts):

        exec_sleep_s: wall-clock stall injected at the start of the
            scenario's execution — the deterministic "stuck worker"
            used to exercise :class:`~repro.engine.BatchRunner`'s
            per-scenario timeout and quarantine.  Does not change the
            decode; capped at 600 s.
    """

    chunk_drop: float = 0.0
    chunk_duplicate: float = 0.0
    chunk_reorder: float = 0.0
    chunk_delay: float = 0.0
    delay_chunks: int = 2
    burst_rate_hz: float = 0.0
    burst_length_s: float = 0.02
    burst_gain: float = 1.0
    saturate_fraction: float = 0.0
    dropout_rate_hz: float = 0.0
    dropout_length_s: float = 0.01
    clock_drift_ppm: float = 0.0
    node_dropout: float = 0.0
    node_intermittent: float = 0.0
    intermittent_fraction: float = 0.5
    exec_sleep_s: float = 0.0

    def __post_init__(self) -> None:
        for name in PROBABILITY_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"{name} must be a probability in [0, 1], got {value}")
        for name in ("burst_rate_hz", "dropout_rate_hz"):
            if getattr(self, name) < 0.0:
                raise ValueError(f"{name} must be >= 0, "
                                 f"got {getattr(self, name)}")
        for name in ("burst_length_s", "dropout_length_s"):
            if getattr(self, name) <= 0.0:
                raise ValueError(f"{name} must be positive, "
                                 f"got {getattr(self, name)}")
        if self.burst_gain < 0.0:
            raise ValueError(
                f"burst_gain must be >= 0, got {self.burst_gain}")
        if not 0.0 <= self.saturate_fraction < 1.0:
            raise ValueError(f"saturate_fraction must be in [0, 1), "
                             f"got {self.saturate_fraction}")
        if abs(self.clock_drift_ppm) > 200_000.0:
            raise ValueError(f"clock_drift_ppm must stay within "
                             f"+/-200000, got {self.clock_drift_ppm}")
        if not isinstance(self.delay_chunks, int) or self.delay_chunks < 1:
            raise ValueError(f"delay_chunks must be an integer >= 1, "
                             f"got {self.delay_chunks!r}")
        if not 0.0 < self.intermittent_fraction <= 1.0:
            raise ValueError(f"intermittent_fraction must be in (0, 1], "
                             f"got {self.intermittent_fraction}")
        if not 0.0 <= self.exec_sleep_s <= 600.0:
            raise ValueError(f"exec_sleep_s must be in [0, 600], "
                             f"got {self.exec_sleep_s}")

    # ------------------------------------------------------------------
    @property
    def empty(self) -> bool:
        """Whether every fault process is off (injection is a no-op).

        Shape parameters (lengths, gains, fractions, delay span) do not
        count: without a rate or probability driving them they never
        fire.
        """
        return (all(getattr(self, n) == 0.0 for n in PROBABILITY_FIELDS)
                and all(getattr(self, n) == 0.0 for n in RATE_FIELDS)
                and self.exec_sleep_s == 0.0)

    @property
    def streams(self) -> bool:
        """Whether any stream-layer (chunk transport) fault is active."""
        return any(getattr(self, n) > 0.0 for n in
                   ("chunk_drop", "chunk_duplicate", "chunk_reorder",
                    "chunk_delay"))

    @property
    def signals(self) -> bool:
        """Whether any signal-layer fault is active."""
        return (self.burst_rate_hz > 0.0 or self.dropout_rate_hz > 0.0
                or self.saturate_fraction > 0.0
                or self.clock_drift_ppm != 0.0)

    @property
    def nodes(self) -> bool:
        """Whether any node-layer fault is active."""
        return self.node_dropout > 0.0 or self.node_intermittent > 0.0

    # ------------------------------------------------------------------
    def scaled(self, intensity: float) -> "FaultPlan":
        """This plan with every rate/probability scaled by ``intensity``.

        The chaos sweep's one knob: ``plan.scaled(0)`` is fault-free,
        ``plan.scaled(1)`` is the plan itself, and intermediate values
        interpolate every active process linearly.  Probabilities and
        the saturation depth are clipped back into their valid ranges;
        shape parameters (burst length, dropout length, delay span,
        ``exec_sleep_s``) are left alone.
        """
        if intensity < 0.0:
            raise ValueError(f"intensity must be >= 0, got {intensity}")
        updates: dict[str, Any] = {}
        for name in PROBABILITY_FIELDS:
            updates[name] = min(1.0, getattr(self, name) * intensity)
        for name in ("burst_rate_hz", "dropout_rate_hz"):
            updates[name] = getattr(self, name) * intensity
        updates["saturate_fraction"] = min(
            0.999, self.saturate_fraction * intensity)
        updates["clock_drift_ppm"] = self.clock_drift_ppm * intensity
        return dataclasses.replace(self, **updates)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-safe)."""
        return {f.name: getattr(self, f.name)
                for f in dataclasses.fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        """Inverse of :meth:`to_dict`; rejects unknown fields."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown fault-plan fields: {sorted(unknown)}")
        return cls(**dict(data))

    def canonical_json(self) -> str:
        """Stable JSON encoding (feeds the fault seed derivation)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))
