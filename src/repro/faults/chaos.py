"""Chaos sweeps: decode success versus fault intensity.

The first cut of the ROADMAP's failure-frontier catalogue: take a base
:class:`FaultPlan`, scale it across a ladder of intensities, and run
the *same underlying passes* (fault plans do not perturb the noise
seed) at each rung through the engine.  The resulting curve — decode
rate vs corruption level — is the measured degradation frontier for
that fault mix, deterministic end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..engine.records import RunRecord
from ..engine.runner import BatchRunner
from ..engine.spec import ScenarioSpec
from .plan import FaultPlan

__all__ = ["ChaosPoint", "ChaosSweep", "sweep_fault_intensity"]


@dataclass
class ChaosPoint:
    """Aggregates for one fault-intensity rung.

    Attributes:
        intensity: the scale factor applied to the base plan.
        plan: the concrete scaled plan that ran.
        records: the rung's run records.
        decode_rate: exact-payload decode rate at this rung.
        fused_rate: fused decode rate (equals ``decode_rate`` for
            single-receiver scenarios).
        fault_events: total injected fault events, summed by kind.
        executor_errors: records the runner had to synthesize
            (timeouts, crashed workers) rather than execute.
    """

    intensity: float
    plan: FaultPlan
    records: list[RunRecord] = field(default_factory=list)

    @property
    def n(self) -> int:
        return len(self.records)

    @property
    def decode_rate(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.success for r in self.records) / len(self.records)

    @property
    def fused_rate(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.fused_success for r in self.records) / len(self.records)

    @property
    def fault_events(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for record in self.records:
            for kind, count in record.fault_events.items():
                totals[kind] = totals.get(kind, 0) + count
        return totals

    @property
    def executor_errors(self) -> int:
        return sum(r.stage == "executor_error" for r in self.records)


@dataclass
class ChaosSweep:
    """One full intensity ladder for one fault mix."""

    base_plan: FaultPlan
    points: list[ChaosPoint] = field(default_factory=list)

    def degradation(self) -> float:
        """Decode-rate drop from the weakest to the strongest rung."""
        if len(self.points) < 2:
            return 0.0
        return self.points[0].decode_rate - self.points[-1].decode_rate

    def render(self) -> str:
        """ASCII frontier table (the ``repro-engine chaos`` output)."""
        lines = ["chaos frontier   (intensity | decode | fused | "
                 "fault events | exec errors)"]
        for point in self.points:
            bar = "#" * int(round(30 * point.decode_rate))
            events = sum(point.fault_events.values())
            lines.append(
                f"  {point.intensity:>6.3f} | {bar} {point.decode_rate:.2f}"
                f" | {point.fused_rate:.2f} | {events:>6d}"
                f" | {point.executor_errors}")
        return "\n".join(lines)


def sweep_fault_intensity(specs: Sequence[ScenarioSpec], plan: FaultPlan,
                          intensities: Sequence[float],
                          runner: BatchRunner | None = None) -> ChaosSweep:
    """Run the same scenarios at every rung of a fault-intensity ladder.

    Args:
        specs: base scenarios (any existing ``fault_plan`` is replaced
            rung by rung; an intensity of 0 strips it entirely so the
            rung is a genuinely clean baseline).
        plan: the fault mix to scale.
        intensities: ladder of scale factors (run in the given order).
        runner: optional shared :class:`BatchRunner` (a cache-backed
            runner makes repeated frontiers cheap); default serial.

    Returns:
        A :class:`ChaosSweep` with one :class:`ChaosPoint` per rung.
    """
    if not intensities:
        raise ValueError("need at least one intensity")
    if plan.empty:
        raise ValueError("base fault plan is empty; nothing to sweep")
    runner = runner or BatchRunner()
    sweep = ChaosSweep(base_plan=plan)
    for intensity in intensities:
        scaled = plan.scaled(intensity)
        rung_plan = None if scaled.empty else scaled
        rung_specs = [spec.replace(fault_plan=rung_plan) for spec in specs]
        result = runner.run(rung_specs)
        sweep.points.append(ChaosPoint(intensity=float(intensity),
                                       plan=scaled,
                                       records=result.records))
    return sweep
