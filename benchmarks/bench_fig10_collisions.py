"""Fig. 10 — two overlapping packets and the FFT fallback.

Paper: Case 1 (low-frequency packet dominates) and Case 2 (high-
frequency dominates) remain time-domain decodable with a single
dominant FFT peak each; Case 3 (equal FoV share) is undecodable but
the FFT reveals the presence of two different object types.
"""

from repro.analysis.experiments import experiment_fig10

from conftest import report


def test_fig10_packet_collisions(benchmark):
    result = benchmark.pedantic(experiment_fig10, rounds=2, iterations=1)
    report(result)
    assert result.passed, result.report()
    assert result.measured["case1_decodes_dominant"]
    assert result.measured["case2_decodes_dominant"]
    assert not result.measured["case3_decodes_either"]
    assert len(result.measured["case3_peak_frequencies_hz"]) >= 2
