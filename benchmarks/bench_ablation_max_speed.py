"""Ablation — maximal supported object speed (Section 6 extension).

"This is mainly determined by the PD's response time to light changes
and the receiver's sampling rate."  The bench sweeps the pass speed at
fixed symbol width until decoding collapses, and compares the empirical
ceiling against the analytic bound from the detector bandwidth and the
ADC rate.
"""

from repro.analysis.experiments import outdoor_tag_capture
from repro.core.capacity import max_supported_speed_mps
from repro.core.decoder import AdaptiveThresholdDecoder
from repro.core.errors import DecodeError, PreambleNotFoundError
from repro.hardware.frontend import ReceiverFrontEnd
from repro.hardware.led_receiver import LedReceiver


def _decodes_at(speed, seeds=(3, 4, 5)):
    wins = 0
    for seed in seeds:
        receiver = ReceiverFrontEnd(detector=LedReceiver.red_5mm())
        trace, packet = outdoor_tag_capture("00", 6200.0, 0.75, receiver,
                                            speed_mps=speed, seed=seed)
        try:
            result = AdaptiveThresholdDecoder().decode(trace,
                                                       n_data_symbols=4)
        except (PreambleNotFoundError, DecodeError):
            continue
        wins += result.bit_string() == "00"
    return wins * 2 > len(seeds)


def test_ablation_max_supported_speed(benchmark):
    def sweep():
        speeds = [2.0, 5.0, 10.0, 20.0, 40.0, 80.0, 160.0]
        return {s: _decodes_at(s) for s in speeds}

    outcome = benchmark.pedantic(sweep, rounds=1, iterations=1)
    analytic = max_supported_speed_mps(
        symbol_width_m=0.1,
        detector_bandwidth_hz=LedReceiver.red_5mm().bandwidth_hz,
        sample_rate_hz=2000.0)
    empirical_max = max(s for s, ok in outcome.items() if ok)
    print(f"\n[ablation/max-speed] decodable per speed: {outcome}; "
          f"empirical max >= {empirical_max} m/s, analytic bound "
          f"{analytic:.1f} m/s")
    # The paper's 5 m/s demo is comfortably inside the envelope.
    assert outcome[5.0]
    # Decoding does collapse, and the analytic bound is conservative:
    # the empirical ceiling sits between the bound and a few multiples
    # of it (the bound assumes 3-tau settling; partial settling still
    # decodes thanks to the adaptive thresholds).
    assert not outcome[160.0]
    assert analytic <= empirical_max <= 6.0 * analytic
