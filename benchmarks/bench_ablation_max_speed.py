"""Ablation — maximal supported object speed (Section 6 extension).

"This is mainly determined by the PD's response time to light changes
and the receiver's sampling rate."  The bench sweeps the pass speed at
fixed symbol width until decoding collapses, and compares the empirical
ceiling against the analytic bound from the detector bandwidth and the
ADC rate.

The (speed x seed) grid executes through the ``repro.engine`` batch
runner; the ADC rate stays pinned at the outdoor 2 kS/s so the sweep
stresses the receiver chain, not the sampling budget.
"""

from repro.analysis.experiments import outdoor_tag_spec
from repro.core.capacity import max_supported_speed_mps
from repro.engine import BatchRunner, expand_grid, success_rate_by
from repro.hardware.led_receiver import LedReceiver

SEEDS = (3, 4, 5)


def test_ablation_max_supported_speed(benchmark):
    speeds = [2.0, 5.0, 10.0, 20.0, 40.0, 80.0, 160.0]
    specs = expand_grid(outdoor_tag_spec("00", 6200.0, 0.75),
                        {"speed_mps": speeds, "seed": list(SEEDS)})
    runner = BatchRunner(workers=2)

    def sweep():
        rates = success_rate_by(runner.run(specs).records, "speed_mps")
        return {s: rates[s] > 0.5 for s in speeds}

    outcome = benchmark.pedantic(sweep, rounds=1, iterations=1)
    analytic = max_supported_speed_mps(
        symbol_width_m=0.1,
        detector_bandwidth_hz=LedReceiver.red_5mm().bandwidth_hz,
        sample_rate_hz=2000.0)
    empirical_max = max(s for s, ok in outcome.items() if ok)
    print(f"\n[ablation/max-speed] decodable per speed: {outcome}; "
          f"empirical max >= {empirical_max} m/s, analytic bound "
          f"{analytic:.1f} m/s")
    # The paper's 5 m/s demo is comfortably inside the envelope.
    assert outcome[5.0]
    # Decoding does collapse, and the analytic bound is conservative:
    # the empirical ceiling sits between the bound and a few multiples
    # of it (the bound assumes 3-tau settling; partial settling still
    # decodes thanks to the adaptive thresholds).
    assert not outcome[160.0]
    assert analytic <= empirical_max <= 6.0 * analytic
