"""Fig. 16 — photodiode with and without the FoV cap.

Paper: at a 100 lux noise floor the PD (G2) is sensitive enough, but its
wide FoV admits interference from the car's metal roof and the code is
undecodable; adding the 1.2x1.2x2.8 cm physical cap narrows the FoV and
decoding succeeds despite the RSS drop.
"""

from repro.analysis.experiments import experiment_fig16

from conftest import report


def test_fig16_fov_cap_filters_interference(benchmark):
    result = benchmark.pedantic(experiment_fig16, rounds=1, iterations=1)
    report(result)
    assert result.passed, result.report()
    assert result.measured["decode_rate_without_cap"] <= 0.2
    assert result.measured["decode_rate_with_cap"] >= 0.6
