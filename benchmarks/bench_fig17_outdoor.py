"""Fig. 17 — the outdoor vehicle application, well illuminated.

Paper: with the RX-LED and the car at 18 km/h, the code decodes at
(a) 6200 lux / 75 cm, (b) 3700 lux / 100 cm and (c) 5500 lux / 100 cm
with the HLHL.LHHL code; the achieved throughput is ~50 symbols/s
(5 m/s over 10 cm symbols).

All fifteen tagged-car passes (3 configurations x 5 seeds) execute as
one batch through the ``repro.engine`` worker pool.
"""

from repro.analysis.experiments import experiment_fig17
from repro.engine import BatchRunner

from conftest import report


def test_fig17_outdoor_configurations(benchmark):
    def run():
        return experiment_fig17(runner=BatchRunner(workers=2))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report(result)
    assert result.passed, result.report()
    assert result.measured["throughput_sps"] == 50.0
    for key in ("decode_rate_a_6200lux_h75cm_code00",
                "decode_rate_b_3700lux_h100cm_code00",
                "decode_rate_c_5500lux_h100cm_code10"):
        assert result.measured[key] >= 0.6
