"""Fig. 7 — decoding under ceiling fluorescent lights.

Paper: with 2.3 m fluorescent tubes the method still works, but the
noise floor is higher, the HIGH/LOW gap smaller, and the lines 'thicker'
due to the AC power supply.  The reproduction asserts a successful
decode, a dominant 100 Hz ripple component absent from the dark room,
and a reduced modulation index.
"""

from repro.analysis.experiments import experiment_fig7

from conftest import report


def test_fig07_fluorescent_light(benchmark):
    result = benchmark.pedantic(experiment_fig7, rounds=3, iterations=1)
    report(result)
    assert result.passed, result.report()
    assert result.measured["decoded"]
    assert (result.measured["ac_100hz_ripple_share"]
            > result.measured["dark_room_ripple_share"])
    assert (result.measured["modulation_index"]
            < result.measured["dark_room_modulation_index"])
