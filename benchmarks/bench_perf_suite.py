"""Perf-suite acceptance: the vectorized hot paths actually pay off.

Unlike the ``bench_figXX`` files (which reproduce paper figures), this
bench pins this repo's *performance* claims:

* the wavefront DTW kernel is >= 10x faster than the pure-Python loop
  on the acceptance workload (two 2000-sample banded traces) while
  returning bit-identical results;
* the full perf suite runs end to end and reports every tracked
  workload.

Gated behind ``--run-slow`` like every other bench.
"""

import time

from repro.dsp.dtw import dtw
from repro.perf import default_workloads, run_suite
from repro.perf.suite import _dtw_signals


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def test_banded_dtw_speedup_at_least_10x():
    # The exact signals the tracked dtw_banded workload times.
    a, b = _dtw_signals(quick=False)
    t_ref, ref = _best_of(lambda: dtw(a, b, implementation="reference"),
                          repeats=1)
    t_vec, vec = _best_of(lambda: dtw(a, b, implementation="vectorized"))
    assert vec.distance == ref.distance
    assert vec.normalized_distance == ref.normalized_distance
    speedup = t_ref / t_vec
    print(f"\nbanded DTW 2000x2000: reference {t_ref * 1e3:.0f} ms, "
          f"vectorized {t_vec * 1e3:.0f} ms -> {speedup:.1f}x")
    assert speedup >= 10.0, (
        f"wavefront kernel only {speedup:.1f}x faster than the loop")


def test_quick_suite_covers_all_tracked_workloads():
    report = run_suite(quick=True, repeats=1)
    measured = {t.name for t in report.results}
    assert measured == {w.name for w in default_workloads()}
    for timing in report.results:
        assert timing.median_s > 0.0
        assert timing.stddev_s >= 0.0
