"""Fig. 11 (table) — saturation and sensitivity of the receivers.

Paper: PD G1/G2/G3 saturate at 450/1200/5000 lux with relative
sensitivities 1/0.45/0.089; the RX-LED saturates at 35 klux with 0.013.
The reproduction sweeps each detector's static transfer, measures the
clip onset and small-signal slope, and exercises the Section 4.4
dual-receiver selection policy across ambient levels.
"""

from repro.analysis.experiments import experiment_fig11

from conftest import report


def test_fig11_receiver_characteristics(benchmark):
    result = benchmark.pedantic(experiment_fig11, rounds=5, iterations=1)
    report(result)
    assert result.passed, result.report()
    for name, sat in (("PD-G1", 450.0), ("PD-G2", 1200.0),
                      ("PD-G3", 5000.0), ("RX-LED", 35000.0)):
        measured = result.measured[name]["saturation_lux"]
        assert abs(measured - sat) / sat < 0.02
