"""Fig. 6(b) — channel throughput vs receiver height.

Paper: at a constant 8 cm/s, the narrowest decodable symbol width grows
with height, so throughput = speed / width decays ~exponentially
(roughly 9 -> 1 symbols/s over 0.2 -> 0.5 m).  The reproduction asserts
a monotone decay with a negative exponential rate and at least a 1.8x
drop over the swept range (the simulated receiver is blur-limited over
more of the range, so the measured factor is smaller than 9x).
"""

from repro.analysis.experiments import experiment_fig6b

from conftest import report


def test_fig06b_throughput_decay(benchmark):
    result = benchmark.pedantic(experiment_fig6b, kwargs={"quick": True},
                                rounds=1, iterations=1)
    report(result)
    assert result.passed, result.report()
    assert result.measured["exp_rate_per_m"] < 0.0
    assert result.measured["decay_ratio_first_to_last"] >= 1.8
