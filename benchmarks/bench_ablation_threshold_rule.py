"""Ablation — the paper's literal tau_r rule vs the midpoint reading.

DESIGN.md Section 5: the paper compares a window max against tau_r
directly.  tau_r is a peak-to-valley *difference*, so the comparison
only works when LOW-symbol valleys descend close to the waveform floor.
That holds for sharply resolved signals (little FoV blur — the regime
of the paper's Fig. 5 plots), but under realistic footprint blur the
inter-peak valleys only descend part-way and the literal comparison
collapses, while the midpoint reading (threshold at
``valley + tau_r/2``) is blur- and pedestal-invariant.  That is why
"midpoint" is the library default.
"""

import numpy as np

from repro.analysis.experiments import indoor_capture
from repro.channel.trace import SignalTrace
from repro.core.decoder import AdaptiveThresholdDecoder, DecoderConfig
from repro.core.errors import DecodeError, PreambleNotFoundError


def _sharp_trace(symbols, seed=0, fs=200.0):
    """A low-blur waveform: valleys reach the floor (paper's regime)."""
    rng = np.random.default_rng(seed)
    per = int(0.4 * fs)
    levels = [100.0 if s == "H" else 12.0 for s in symbols]
    steps = np.concatenate([np.full(per, lv) for lv in levels])
    x = np.concatenate([np.full(per, 8.0), steps, np.full(per, 8.0)])
    kernel = np.hanning(9)
    kernel /= kernel.sum()
    x = np.convolve(x, kernel, mode="same")
    x = x + rng.normal(0.0, 1.0, len(x))
    return SignalTrace(np.clip(x, 0, 1023), fs)


def _decode_rate(rule, items):
    decoder = AdaptiveThresholdDecoder(DecoderConfig(threshold_rule=rule))
    wins = 0
    for trace, bits in items:
        try:
            result = decoder.decode(trace, n_data_symbols=2 * len(bits))
        except (PreambleNotFoundError, DecodeError):
            continue
        wins += result.bit_string() == bits
    return wins / len(items)


def test_ablation_threshold_rules(benchmark):
    sharp = [(_sharp_trace("HLHL" + data, seed=s), bits)
             for data, bits in (("HLHL", "00"), ("LHHL", "10"))
             for s in (1, 2, 3)]
    blurred = [(tr, pkt.bit_string())
               for tr, pkt in (indoor_capture(bits, 0.03, 0.2, seed=s)
                               for bits in ("00", "10")
                               for s in (3, 4, 5))]

    def run():
        return {
            "sharp_paper": _decode_rate("paper", sharp),
            "sharp_midpoint": _decode_rate("midpoint", sharp),
            "blurred_paper": _decode_rate("paper", blurred),
            "blurred_midpoint": _decode_rate("midpoint", blurred),
        }

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n[ablation/threshold-rule] decode rates: {rates}")
    # Sharp, floor-anchored waveforms: both readings work.
    assert rates["sharp_paper"] >= 0.8
    assert rates["sharp_midpoint"] >= 0.8
    # Realistic FoV blur: only the midpoint reading survives.
    assert rates["blurred_midpoint"] >= 0.8
    assert rates["blurred_paper"] <= rates["blurred_midpoint"] - 0.5
