"""Ablation — the full decode-rate waterfall behind Fig. 15.

The paper reports two operating points for the RX-LED at 25 cm: works
at 450 lux, fails at 100 lux.  This bench sweeps the noise floor across
the whole range and locates the decode cliff, checking that the paper's
two points straddle it.

The sweep is a (noise floor x seed) grid executed through the
``repro.engine`` batch runner instead of a hand-rolled seed loop.
"""

from repro.analysis.experiments import outdoor_tag_spec
from repro.analysis.waterfall import WaterfallCurve, WaterfallPoint
from repro.engine import BatchRunner, expand_grid, success_rate_by


def test_ablation_noise_floor_waterfall(benchmark):
    levels = [3000.0, 1000.0, 450.0, 250.0, 100.0, 50.0]
    specs = expand_grid(outdoor_tag_spec("00", levels[0], 0.25),
                        {"ground_lux": levels, "seed": [2, 3, 4, 5, 6]})
    runner = BatchRunner(workers=2)

    def run():
        rates = success_rate_by(runner.run(specs).records, "ground_lux")
        return WaterfallCurve(
            parameter="noise floor (lux)",
            points=[WaterfallPoint(stress=lux, decode_rate=rates[lux])
                    for lux in levels])

    curve = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(curve.render())
    cliff = curve.crossover(0.5)
    print(f"decode cliff (rate < 0.5) at {cliff} lux")
    rates = {p.stress: p.decode_rate for p in curve.points}
    # The paper's operating points straddle the cliff.
    assert rates[450.0] >= 0.6
    assert rates[100.0] <= 0.2
    assert cliff is not None and 100.0 <= cliff <= 450.0
