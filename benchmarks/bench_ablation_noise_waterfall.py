"""Ablation — the full decode-rate waterfall behind Fig. 15.

The paper reports two operating points for the RX-LED at 25 cm: works
at 450 lux, fails at 100 lux.  This bench sweeps the noise floor across
the whole range and locates the decode cliff, checking that the paper's
two points straddle it.
"""

from repro.analysis.waterfall import noise_floor_waterfall
from repro.hardware.frontend import ReceiverFrontEnd
from repro.hardware.led_receiver import LedReceiver


def test_ablation_noise_floor_waterfall(benchmark):
    levels = [3000.0, 1000.0, 450.0, 250.0, 100.0, 50.0]

    def run():
        return noise_floor_waterfall(
            lambda seed: ReceiverFrontEnd(detector=LedReceiver.red_5mm(),
                                          seed=seed),
            lux_levels=levels, height_m=0.25, seeds=(2, 3, 4, 5, 6))

    curve = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(curve.render())
    cliff = curve.crossover(0.5)
    print(f"decode cliff (rate < 0.5) at {cliff} lux")
    rates = {p.stress: p.decode_rate for p in curve.points}
    # The paper's operating points straddle the cliff.
    assert rates[450.0] >= 0.6
    assert rates[100.0] <= 0.2
    assert cliff is not None and 100.0 <= cliff <= 450.0
