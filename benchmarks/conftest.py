"""Benchmark harness configuration.

Each ``bench_figXX_*.py`` regenerates one figure/table from the paper's
evaluation, asserts its shape-level claim, and prints the
paper-vs-measured report (run with ``-s`` to see the reports of passing
benches; failures always show them).
"""

import pytest


def report(result) -> None:
    """Print an experiment's paper-vs-measured report."""
    print()
    print(result.report())
