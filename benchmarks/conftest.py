"""Benchmark harness configuration.

Each ``bench_figXX_*.py`` regenerates one figure/table from the paper's
evaluation, asserts its shape-level claim, and prints the
paper-vs-measured report (run with ``-s`` to see the reports of passing
benches; failures always show them).

The benchmarks re-simulate whole paper figures, so they are gated: they
collect but auto-skip unless ``--run-slow`` (defined in the repo-root
``conftest.py``) is passed::

    python -m pytest benchmarks --run-slow
"""

from pathlib import Path

import pytest


def pytest_collection_modifyitems(config, items):
    """Mark every benchmark item slow; skip them without --run-slow."""
    skip = pytest.mark.skip(
        reason="benchmark: pass --run-slow to execute")
    run_slow = config.getoption("--run-slow", default=False)
    for item in items:
        if not Path(str(item.fspath)).name.startswith("bench_"):
            continue
        item.add_marker(pytest.mark.slow)
        if not run_slow:
            item.add_marker(skip)


def report(result) -> None:
    """Print an experiment's paper-vs-measured report."""
    print()
    print(result.report())
