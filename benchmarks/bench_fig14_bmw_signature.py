"""Fig. 14 — the BMW 3-series' optical signature.

Paper: the sedan adds a trunk-deck peak (E) after the rear-window
valley, giving a five-feature signature distinct from the hatchback's.
"""

from repro.analysis.experiments import experiment_fig14

from conftest import report


def test_fig14_bmw_signature(benchmark):
    result = benchmark.pedantic(experiment_fig14, rounds=3, iterations=1)
    report(result)
    assert result.passed, result.report()
    assert result.measured["matched_model"] == "BMW 3 series"
    assert result.measured["n_peaks"] == 3
