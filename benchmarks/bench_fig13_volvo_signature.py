"""Fig. 13 — the Volvo V40's optical signature.

Paper: the bare hatchback at 18 km/h under the RX-LED shows hood peak
(A), windshield valley (B), roof peak (C) and rear-window valley (D);
the waveform identifies the car design.
"""

from repro.analysis.experiments import experiment_fig13

from conftest import report


def test_fig13_volvo_signature(benchmark):
    result = benchmark.pedantic(experiment_fig13, rounds=3, iterations=1)
    report(result)
    assert result.passed, result.report()
    assert result.measured["matched_model"] == "Volvo V40"
