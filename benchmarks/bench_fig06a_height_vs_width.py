"""Fig. 6(a) — maximal decodable height vs symbol width.

Paper: a decodable region bounded by a *linear* relationship between
maximal emitter/receiver height and symbol width (1.5-7.5 cm symbols
mapping to roughly 0.2-0.5 m).  The reproduction asserts positive slope
and a linear fit with R^2 >= 0.85; the absolute frontier sits at
slightly wider symbols than the paper's (see DESIGN.md).
"""

from repro.analysis.experiments import experiment_fig6a

from conftest import report


def test_fig06a_linear_frontier(benchmark):
    result = benchmark.pedantic(experiment_fig6a, kwargs={"quick": True},
                                rounds=1, iterations=1)
    report(result)
    assert result.passed, result.report()
    assert result.measured["linear_slope_m_per_m"] > 0.0
    assert result.measured["r_squared"] >= 0.85
