"""Fig. 8 — variable speed distortion and the DTW fallback.

Paper: an object that doubles its speed mid-packet defeats the threshold
decoder ('HLHL.HL' instead of 'HLHL.LHHL'), but DTW against the clean
Fig. 5 templates classifies it correctly (distances 326 vs 172, self
131).  Absolute distances depend on sampling and normalisation; the
reproduction asserts the decoder failure and the distance *ordering*
d(correct '10') < d(wrong '00').
"""

from repro.analysis.experiments import experiment_fig8

from conftest import report


def test_fig08_dtw_classification(benchmark):
    result = benchmark.pedantic(experiment_fig8, rounds=3, iterations=1)
    report(result)
    assert result.passed, result.report()
    assert result.measured["threshold_decode_wrong"]
    assert result.measured["classified_as"] == "10"
    assert (result.measured["dtw_distance_to_10"]
            < result.measured["dtw_distance_to_00"])
