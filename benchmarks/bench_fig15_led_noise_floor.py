"""Fig. 15 — RX-LED under mild illumination.

Paper: with the tag at 18 km/h and the receiver at 25 cm, the RX-LED
decodes at a 450 lux noise floor but fails at 100 lux — the system
harnesses ambient light, and too little of it leaves nothing to
modulate.
"""

from repro.analysis.experiments import experiment_fig15

from conftest import report


def test_fig15_led_noise_floor_threshold(benchmark):
    result = benchmark.pedantic(experiment_fig15, rounds=1, iterations=1)
    report(result)
    assert result.passed, result.report()
    assert result.measured["decode_rate_at_450lux"] >= 0.6
    assert result.measured["decode_rate_at_100lux"] <= 0.2
