"""Fig. 15 — RX-LED under mild illumination.

Paper: with the tag at 18 km/h and the receiver at 25 cm, the RX-LED
decodes at a 450 lux noise floor but fails at 100 lux — the system
harnesses ambient light, and too little of it leaves nothing to
modulate.

The ten seeded passes (2 noise floors x 5 seeds) execute as one batch
through the ``repro.engine`` worker pool.
"""

from repro.analysis.experiments import experiment_fig15
from repro.engine import BatchRunner

from conftest import report


def test_fig15_led_noise_floor_threshold(benchmark):
    def run():
        return experiment_fig15(runner=BatchRunner(workers=2))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report(result)
    assert result.passed, result.report()
    assert result.measured["decode_rate_at_450lux"] >= 0.6
    assert result.measured["decode_rate_at_100lux"] <= 0.2
