"""Sustainability comparison — the paper's Section 1 argument.

"Cameras can also provide a passive monitoring infrastructure [...] But
cameras consume orders of magnitude more energy than simpler
photodiodes: upwards of 1000 mW vs 1.5 mW", and a credit-card solar
panel should power the tiny box autonomously.  This bench quantifies
the tiny-box vs camera power budgets and the autonomy margin across the
paper's ambient levels.
"""

from repro.hardware.energy import (
    autonomy,
    camera_receiver_budget,
    photodiode_receiver_budget,
)


def test_sustainability_comparison(benchmark):
    def run():
        box = photodiode_receiver_budget()
        camera = camera_receiver_budget()
        rows = {}
        for lux in (450.0, 3700.0, 6200.0, 10_000.0):
            rows[lux] = (autonomy(box, lux).margin,
                         autonomy(camera, lux).margin)
        return box, camera, rows

    box, camera, rows = benchmark.pedantic(run, rounds=5, iterations=1)
    print(f"\n[sustainability] tiny box {box.total_w * 1e3:.2f} mW vs "
          f"camera {camera.total_w * 1e3:.0f} mW "
          f"({camera.total_w / box.total_w:.0f}x)")
    for lux, (m_box, m_cam) in rows.items():
        print(f"  {lux:8.0f} lux: box margin {m_box:6.2f}x, "
              f"camera margin {m_cam:6.3f}x")
    # Orders of magnitude apart, per the paper.
    assert camera.total_w > 100 * box.total_w
    # The tiny box is solar-autonomous outdoors; the camera never is.
    assert rows[6200.0][0] > 1.0
    assert all(m_cam < 1.0 for _, m_cam in rows.values())
