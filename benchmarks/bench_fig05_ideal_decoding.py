"""Fig. 5 — clean RSS decoding in the ideal dark-room scenario.

Paper: codes '00' (HLHL) and '10' (LHHL) at 3 cm symbol width, receiver
and LED lamp at 20 cm height, object at 8 cm/s; both packets decode with
the per-packet adaptive thresholds.
"""

from repro.analysis.experiments import experiment_fig5

from conftest import report


def test_fig05_ideal_decoding(benchmark):
    result = benchmark.pedantic(experiment_fig5, rounds=3, iterations=1)
    report(result)
    assert result.passed, result.report()
    assert result.measured["code_00_decoded"]
    assert result.measured["code_10_decoded"]
