"""Ablation — Sakoe-Chiba band width in the DTW classifier.

The classifier constrains warping to a band.  Too narrow a band cannot
absorb the paper's 2x mid-packet speed change; no band at all is slower
and allows degenerate warpings.  This bench measures classification
accuracy and runtime across band settings.
"""

import time

from repro.analysis.experiments import indoor_capture
from repro.channel.mobility import speed_doubling_profile
from repro.core.classifier import DtwClassifier
from repro.tags.packet import Packet


def _dataset():
    clean00, _ = indoor_capture("00", 0.03, 0.2, seed=6)
    clean10, _ = indoor_capture("10", 0.03, 0.2, seed=6)
    packet = Packet.from_bitstring("10", symbol_width_m=0.03)
    distorted = [indoor_capture(
        "10", 0.03, 0.2,
        motion=speed_doubling_profile(packet.length_m, 0.08, -0.3),
        seed=seed)[0] for seed in (7, 8, 9, 10)]
    return clean00, clean10, distorted


def _accuracy(band, data):
    clean00, clean10, distorted = data
    clf = DtwClassifier(band_fraction=band)
    clf.add_template("00", clean00)
    clf.add_template("10", clean10)
    wins = sum(clf.classify(q).label == "10" for q in distorted)
    return wins / len(distorted)


def test_ablation_dtw_band(benchmark):
    data = _dataset()

    def run():
        out = {}
        for band in (0.05, 0.25, None):
            t0 = time.perf_counter()
            acc = _accuracy(band, data)
            out[str(band)] = (acc, time.perf_counter() - t0)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n[ablation/dtw-band] band -> (accuracy, seconds): {results}")
    # The recommended band absorbs the 2x speed change.
    assert results["0.25"][0] >= 0.75
    # Unconstrained DTW is at least as accurate but not cheaper.
    assert results["None"][0] >= results["0.25"][0] - 1e-9
    assert results["None"][1] >= results["0.25"][1]
