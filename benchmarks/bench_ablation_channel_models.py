"""Ablation — chord-approximation vs exact-lateral (ray) channel model.

DESIGN.md commits to cross-validating the fast convolution kernel
(analytic chord weighting) against the full lateral ray quadrature.
This bench measures both the waveform agreement and the speed gap that
justifies using the chord kernel by default.
"""

import numpy as np

from repro.channel.simulator import ChannelSimulator, SimulatorConfig
from repro.channel.mobility import ConstantSpeed
from repro.channel.scene import MovingObject, PassiveScene
from repro.hardware.frontend import FovCap, ReceiverFrontEnd
from repro.hardware.photodiode import PdGain, Photodiode
from repro.optics.geometry import Vec3
from repro.optics.sources import LedLamp
from repro.tags.packet import Packet
from repro.tags.surface import TagSurface


def _scene():
    tag = TagSurface.from_packet(
        Packet.from_bitstring("10", symbol_width_m=0.04))
    return PassiveScene(
        source=LedLamp(position=Vec3(0.12, 0.0, 0.25),
                       luminous_intensity=2.0),
        receiver_height_m=0.25,
        objects=[MovingObject(tag, ConstantSpeed(0.08, -0.35), "tag")])


def _frontend():
    return ReceiverFrontEnd(detector=Photodiode.opt101(gain=PdGain.G1),
                            cap=FovCap.paper_cap(), seed=1)


def _waveform(method):
    sim = ChannelSimulator(_scene(), _frontend(),
                           SimulatorConfig(sample_rate_hz=400.0,
                                           include_noise=False,
                                           kernel_method=method))
    return sim.optical_pass().normalized().samples


def test_ablation_chord_kernel_speed(benchmark):
    """Benchmark the default (chord) model; agreement asserted below."""
    chord = benchmark(lambda: _waveform("chord"))
    exact = _waveform("exact")
    n = min(len(chord), len(exact))
    rmse = float(np.sqrt(np.mean((chord[:n] - exact[:n]) ** 2)))
    print(f"\n[ablation/channel-models] chord-vs-exact normalised RMSE = "
          f"{rmse:.4f} (must be < 0.05)")
    assert rmse < 0.05


def test_ablation_exact_kernel_speed(benchmark):
    """Benchmark the ray-quadrature model for the speed comparison."""
    exact = benchmark(lambda: _waveform("exact"))
    assert len(exact) > 0
